package analysis

import (
	"go/ast"
	"go/types"
)

// paddingCheck verifies structs marked //ffq:padded against the
// cache-line layout rules the paper's Section IV-A study motivates:
//
//  1. the struct's types.Sizes size must be a multiple of the
//     cache-line constant (core.CacheLineSize), so that arrays and
//     neighbouring allocations cannot fold two instances into one
//     line, and
//  2. no two sync/atomic fields of the struct may fall into the same
//     cache-line-sized block (offsets taken from types.Sizes,
//     assuming a line-aligned base), so that independently updated
//     hot words never false-share.
//
// Fields of struct type that themselves contain atomics are not
// expanded: nesting is the sanctioned idiom for grouping deliberately
// co-located cold counters (see obs.prodLine).
type paddingCheck struct{}

func (paddingCheck) ID() string { return "padding" }
func (paddingCheck) Doc() string {
	return "//ffq:padded structs must be cache-line multiples with atomic fields on distinct lines"
}

func (c paddingCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Check:   c.ID(),
			Message: sprintf(format, args...),
		})
	}
	line := ctx.CacheLine
	if line <= 0 {
		line = 64
	}

	for ts := range p.Markers.Padded {
		obj := p.Info.Defs[ts.Name]
		if obj == nil || obj.Type() == nil {
			continue // type errors: nothing reliable to measure
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			report(ts, "//ffq:padded marker on %s, which is not a struct type", ts.Name.Name)
			continue
		}
		size := p.Sizes.Sizeof(st)
		if size%line != 0 {
			report(ts, "padded struct %s is %d bytes, not a multiple of the %d-byte cache line (add %d trailing pad bytes)",
				ts.Name.Name, size, line, line-size%line)
		}

		n := st.NumFields()
		if n == 0 {
			continue
		}
		fields := make([]*types.Var, n)
		for i := 0; i < n; i++ {
			fields[i] = st.Field(i)
		}
		offsets := p.Sizes.Offsetsof(fields)
		if len(offsets) != n {
			continue
		}
		// blockOf records the first atomic field seen in each
		// line-sized block.
		blockOf := make(map[int64]*types.Var)
		for i, fv := range fields {
			if !isAtomicValueType(fv.Type()) {
				continue
			}
			block := offsets[i] / line
			if prev, ok := blockOf[block]; ok {
				report(fieldNode(ts, fv.Name()), "atomic fields %s and %s of padded struct %s share one %d-byte cache line (separate them with a pad)",
					prev.Name(), fv.Name(), ts.Name.Name, line)
				continue
			}
			blockOf[block] = fv
		}
	}
	return out
}

// fieldNode locates the AST node of the named field inside the struct
// type spec, falling back to the spec itself.
func fieldNode(ts *ast.TypeSpec, name string) ast.Node {
	st, ok := ts.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return ts
	}
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				return id
			}
		}
	}
	return ts
}
