package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// lapCheck guards the packed 64-bit (rank, gap) word of the MPMC
// emulated double-CAS (core/mpmc.go): the word layout is
// [rank lap : 32][gap lap : 32], and every build/split of it must go
// through the designated //ffq:packhelper functions (mpmcPack,
// mpmcUnpack). Ad-hoc 32-bit shifts on 64-bit integers anywhere else
// silently duplicate the layout and rot when it changes, so they are
// flagged module-wide.
type lapCheck struct{}

func (lapCheck) ID() string { return "lap-packing" }
func (lapCheck) Doc() string {
	return "the packed (rank,gap) word is built/split only by //ffq:packhelper functions"
}

func (c lapCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if p.Markers.PackHelper[fd] || fd.Body == nil {
				continue
			}
			walkSkipFuncLit(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				if be.Op != token.SHL && be.Op != token.SHR {
					return true
				}
				if !isConst32(p.Info, be.Y) || isConstExpr(p.Info, be) {
					return true
				}
				if !is64BitInt(p.Info, be.X) {
					return true
				}
				out = append(out, Finding{
					Pos:     p.Fset.Position(be.Pos()),
					Check:   c.ID(),
					Message: "ad-hoc 32-bit shift builds or splits a packed word; use the //ffq:packhelper pack/unpack helpers (core.mpmcPack/mpmcUnpack) instead",
				})
				return true
			})
		}
	}
	return out
}

// isConst32 reports whether e is the compile-time constant 32.
func isConst32(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 32
}

// is64BitInt reports whether e's type is a 64-bit integer (the width
// of the packed word).
func is64BitInt(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Uint64, types.Int64:
		return true
	}
	return false
}
