// Package hotpathalloc is a corpus case for the hotpath-alloc check:
// the heap-allocating constructs hotpath-purity does not flag inside
// //ffq:hotpath bodies (map index-assign, escaping locals), plus the
// full allocation rule set applied one level deep into
// //ffq:packhelper helpers, which purity never enters.
package hotpathalloc

// state is the queue-like receiver under test.
type state struct {
	index map[int]int
	slot  *int
	buf   []byte
	spill []byte
}

// pair exists so a helper can build a composite literal.
type pair struct{ a, b int }

// sink boxes its arguments, like fmt printers and error wrappers do.
func sink(args ...any) int { return len(args) }

// enqueue exercises the in-body rules.
//
//ffq:hotpath
func (s *state) enqueue(v int) {
	s.index[v] = v //want:hotpath-alloc "map index-assign"
	x := v
	s.slot = &x //want:hotpath-alloc "address of local x escapes via assignment to a heap location"
	s.pack(v)
}

// escape exercises the return-escape rule.
//
//ffq:hotpath
func escape(v int) *int {
	return &v //want:hotpath-alloc "address of local v escapes via return"
}

// flush reaches the second helper.
//
//ffq:hotpath
func (s *state) flush(v int) int {
	return describe(s, v)
}

// pack is expanded one call level from enqueue; the full allocation
// rule set applies here.
//
//ffq:packhelper
func (s *state) pack(v int) {
	s.buf = append(s.buf[:0], byte(v)) // reslice of an existing buffer: reuses capacity
	s.spill = append(s.spill, byte(v)) //want:hotpath-alloc "append on a non-preallocated slice"
	scratch := make([]byte, 8)         //want:hotpath-alloc "make (allocates)"
	s.buf = append(s.buf[:0], scratch...)
}

// describe is expanded one call level from flush.
//
//ffq:packhelper
func describe(s *state, v int) int {
	f := func() int { return v } //want:hotpath-alloc "function literal (closure allocation)"
	p := pair{v, v}              //want:hotpath-alloc "composite literal"
	return sink(v) + f() + p.a   //want:hotpath-alloc "argument boxes"
}
