// Package atomicpublishreader is the reader half of the atomic-publish
// corpus: it imports the writer package and accesses its atomically
// published field plainly — the cross-package leak the same-package
// atomic-discipline check cannot see.
package atomicpublishreader

import "ffq/internal/analysis/testdata/src/atomicpublish"

// racyRead reads the published field without an atomic load.
func racyRead(q *atomicpublish.Queue) uint64 {
	return q.Seq //want:atomic-publish "plain access to field Seq"
}

// initBeforePublish writes the field plainly before the queue is
// shared with any other goroutine: sanctioned by the escape hatch.
func initBeforePublish() *atomicpublish.Queue {
	q := new(atomicpublish.Queue)
	//ffq:plainread q is not yet shared; the store below happens-before publication
	q.Seq = 1
	return q
}

// viaAccessor reads through the writer's atomic accessor: clean.
func viaAccessor(q *atomicpublish.Queue) uint64 {
	return q.Current()
}
