// Package spinbackoff is a corpus case for the spin-backoff check:
// for loops retrying an atomic Load or CompareAndSwap must reach a
// backoff point, directly or through a one-level helper.
package spinbackoff

import (
	"runtime"
	"sync/atomic"
)

type lock struct {
	state atomic.Uint64
}

func (l *lock) acquireBad() {
	for { //want:spin-backoff "without a backoff point"
		if l.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

func (l *lock) acquireDirect() {
	for spins := 0; ; spins++ {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		if spins%64 == 0 {
			runtime.Gosched() // direct backoff point
		}
	}
}

func (l *lock) acquireHelper() {
	for spins := 0; ; spins++ {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		yield(spins) // helper whose body directly backs off
	}
}

// yield is a per-package backoff helper, found by the checker's
// one-level expansion.
func yield(spins int) {
	if spins%64 == 0 {
		runtime.Gosched()
	}
}

func (l *lock) acquireJustified() {
	//ffq:ignore spin-backoff corpus fixture: progress is guaranteed by the test harness
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
	}
}

// drain never retries an atomic read: Store/Add are progress, not
// polling, so the loop is not audited.
func (l *lock) drain(n int) {
	for i := 0; i < n; i++ {
		l.state.Store(uint64(i))
	}
}
