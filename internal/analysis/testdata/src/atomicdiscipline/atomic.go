// Package atomicdiscipline is a corpus case for the atomic-discipline
// check: a field whose address is handed to sync/atomic must never be
// accessed plainly, and sync/atomic values must never be copied.
package atomicdiscipline

import "sync/atomic"

// counter mixes an atomically updated field with a plain one.
type counter struct {
	hits int64 // only ever touched via atomic.AddInt64/LoadInt64
	cold int64 // never touched atomically
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits //want:atomic-discipline "plain access to field hits"
}

func (c *counter) coldBump() int64 {
	c.cold++ // a plain field may be accessed plainly
	return c.cold
}

// box wraps an atomic value type.
type box struct {
	n atomic.Int64
}

func (b *box) load() int64 {
	return b.n.Load() // through the pointer receiver: sanctioned
}

func copyOut(b *box) {
	v := b.n //want:atomic-discipline "assignment copies atomic value of type atomic.Int64"
	_ = v    //want:atomic-discipline "assignment copies"
}

func byValue(n atomic.Int64) int64 { //want:atomic-discipline "parameter of byValue takes atomic type atomic.Int64 by value"
	return n.Load()
}
