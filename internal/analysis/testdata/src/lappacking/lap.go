// Package lappacking is a corpus case for the lap-packing check: the
// packed 64-bit (rank, gap) word is built and split only inside
// //ffq:packhelper functions; ad-hoc 32-bit shifts on 64-bit integers
// are flagged anywhere else.
package lappacking

// pack builds the packed word; the marker licenses its shift.
//
//ffq:packhelper
func pack(rank32, gap32 uint32) uint64 {
	return uint64(rank32)<<32 | uint64(gap32)
}

// unpack splits the packed word; the marker licenses its shift.
//
//ffq:packhelper
func unpack(s uint64) (rank32, gap32 uint32) {
	return uint32(s >> 32), uint32(s)
}

// leak duplicates the word layout outside a helper.
func leak(w uint64) uint32 {
	return uint32(w >> 32) //want:lap-packing "ad-hoc 32-bit shift"
}

// okShift uses a different shift width: not the packed-word layout.
func okShift(w uint64) uint64 {
	return w >> 8
}

// okConst is a compile-time constant, not a runtime packed-word build.
func okConst() uint64 {
	const top = uint64(1) << 32
	return top
}
