// Package goroutinelifecycle is a corpus case for the
// goroutine-lifecycle check: every go statement must be provably
// joined — a dominating WaitGroup.Add with a reachable Wait, or a
// spawned body that calls Done or signals a done channel — or carry
// //ffq:detached with a reason.
package goroutinelifecycle

import "sync"

// leak spawns with no join protocol at all.
func leak() {
	go func() {}() //want:goroutine-lifecycle "goroutine is not provably joined"
}

// leakNamed spawns a named function whose body signals nothing.
func leakNamed() {
	go idle() //want:goroutine-lifecycle "goroutine is not provably joined"
}

func idle() {}

// joinedByAdd follows the WaitGroup discipline: Add dominates the
// spawn and Wait is reachable.
func joinedByAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		_ = 1
	}()
	wg.Wait()
}

// joinedByDone is joined through the spawned body's deferred Done.
func joinedByDone(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

// joinedBySend signals completion on a done channel.
func joinedBySend(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// joinedByClose signals completion by closing the channel.
func joinedByClose(done chan struct{}) {
	go func() {
		defer close(done)
	}()
}

// joinedNamed spawns a named worker whose body closes its channel —
// resolved one call level deep through the declaration index.
func joinedNamed(done chan struct{}) {
	go worker(done)
}

func worker(done chan struct{}) {
	close(done)
}

// fireAndForget is sanctioned: the annotation carries the reason the
// leak is bounded.
func fireAndForget() {
	//ffq:detached corpus fixture: goroutine lives for the process by design
	go idle()
}
