// Package atomicpublish is the writer half of the atomic-publish
// corpus: it publishes fields with package-form sync/atomic stores.
// Cross-package plain access is exercised by the atomicpublishreader
// case, which imports this one; the orphan rule — a field atomically
// stored but never atomically loaded anywhere in the module — is
// exercised here.
package atomicpublish

import "sync/atomic"

// Queue publishes Seq to readers in other packages.
type Queue struct {
	// Seq is stored and loaded atomically: a paired publication.
	Seq uint64
	// Orphan is stored atomically but no package ever loads it.
	Orphan uint64
}

// Publish releases a new sequence number.
func (q *Queue) Publish(v uint64) {
	atomic.StoreUint64(&q.Seq, v)
}

// Current acquires the sequence number; this load keeps Seq paired.
func (q *Queue) Current() uint64 {
	return atomic.LoadUint64(&q.Seq)
}

// MarkOrphan stores a field nobody ever atomically reads.
func (q *Queue) MarkOrphan() {
	atomic.StoreUint64(&q.Orphan, 1) //want:atomic-publish "field Orphan is atomically stored but never atomically loaded"
}
