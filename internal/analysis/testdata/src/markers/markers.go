// Package markers is a corpus case for the marker grammar itself:
// malformed or misplaced //ffq: comments are findings under the
// pseudo-check "marker". The //want+1: form is used throughout because
// these findings sit on the marker comment's own line.
package markers

// The declaration markers below float free of any function or struct
// declaration, where they have no meaning.

//want+1:marker "//ffq:hotpath must be in the doc comment of a function declaration"
//ffq:hotpath

var floating int

//want+1:marker "//ffq:padded must be in the doc comment of a struct type declaration"
//ffq:padded

var alsoFloating int

//want+1:marker "//ffq:ignore needs a check ID and a reason"
//ffq:ignore

//want+1:marker "names unknown check"
//ffq:ignore bogus-check the check ID does not exist

//want+1:marker "unknown marker //ffq:frobnicate"
//ffq:frobnicate

// wellFormed carries a correct (if unused) suppression: no finding.
func wellFormed() int {
	//ffq:ignore spin-backoff corpus fixture: nothing here actually spins
	return int(floating) + int(alsoFloating)
}
