// Package markers is a corpus case for the marker grammar itself:
// malformed or misplaced //ffq: comments are findings under the
// pseudo-check "marker". The //want+1: form is used throughout because
// these findings sit on the marker comment's own line.
package markers

// The declaration markers below float free of any function or struct
// declaration, where they have no meaning.

//want+1:marker "//ffq:hotpath must be in the doc comment of a function declaration"
//ffq:hotpath

var floating int

//want+1:marker "//ffq:padded must be in the doc comment of a struct type declaration"
//ffq:padded

var alsoFloating int

//want+1:marker "//ffq:ignore needs a check ID and a reason"
//ffq:ignore

//want+1:marker "names unknown check"
//ffq:ignore bogus-check the check ID does not exist

//want+1:marker "unknown marker //ffq:frobnicate"
//ffq:frobnicate

// The sanction verbs require a justification, exactly like ignore.

//want+1:marker "//ffq:plainread needs a justification"
//ffq:plainread

//want+1:marker "//ffq:detached needs a justification"
//ffq:detached

// wellFormed exists so the file has an ordinary declaration between
// the floating markers; an unused suppression here would itself be a
// stale-ignore finding (see the staleignore corpus case).
func wellFormed() int {
	return int(floating) + int(alsoFloating)
}
