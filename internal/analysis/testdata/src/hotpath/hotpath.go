// Package hotpath is a corpus case for the hotpath-purity check:
// functions marked //ffq:hotpath must not allocate, call denied
// packages, or iterate maps — except inside Recorder nil-check guards,
// which are off the fast path by construction.
package hotpath

import "fmt"

// Recorder mimics obs.Recorder for the instrumentation-guard
// exemption.
type Recorder struct{ n int }

func (r *Recorder) Note() { r.n++ }

type ring struct {
	rec *Recorder
	buf []uint64
	sum map[int]int
}

//ffq:hotpath
func (q *ring) push(v uint64) {
	q.buf = append(q.buf, v) //want:hotpath-purity "append (may allocate)"
	if q.rec != nil {
		fmt.Println("instrumented push") // guarded: exempt
		q.rec.Note()
	}
}

//ffq:hotpath
func (q *ring) total() int {
	t := 0
	for _, v := range q.sum { //want:hotpath-purity "range over map"
		t += v
	}
	return t
}

//ffq:hotpath
func alloc(n int) []uint64 {
	return make([]uint64, n) //want:hotpath-purity "make (allocates)"
}

//ffq:hotpath
func describe() {
	fmt.Println() //want:hotpath-purity "call into package fmt"
}

// mask is a clean hot function: pure arithmetic never trips the check.
//
//ffq:hotpath
func mask(x, m uint64) uint64 { return x &^ m }

// Latency and Stall mimic the obs latency/watchdog extensions; their
// pointer nil-checks sanction guarded blocks exactly like *Recorder.
type Latency struct{ n int }

func (l *Latency) Record(ns int64) { l.n++ }

type Stall struct{ n int }

func (s *Stall) Check() bool { s.n++; return false }

type timed struct {
	lat   *Latency
	stall *Stall
}

// stamp keeps its clock reads inside the sanctioned *Latency / *Stall
// guards: clean.
//
//ffq:hotpath
func (t *timed) stamp(now func() int64) {
	if t.lat != nil {
		t.lat.Record(now()) // guarded by *Latency: exempt
	}
	st := t.stall
	if st != nil {
		fmt.Println(st.Check()) // guarded by *Stall: exempt
	}
}

// bare reads the clock with no instrumentation guard: flagged.
//
//ffq:hotpath
func (t *timed) bare() {
	fmt.Println("unguarded") //want:hotpath-purity "call into package fmt"
}

// slow is unmarked, so nothing in it is audited.
func slow(vs []uint64) string {
	return fmt.Sprint(len(vs))
}
