// Package padding is a corpus case for the padding check: //ffq:padded
// structs must be whole cache-line multiples and must not place two
// atomic fields in the same 64-byte block.
package padding

import "sync/atomic"

// aligned is the clean shape: two full lines, one hot word per line.
//
//ffq:padded
type aligned struct {
	head atomic.Int64
	_    [56]byte
	tail atomic.Int64
	_    [56]byte
}

// short is 56 bytes: not a whole number of cache lines.
//
//ffq:padded
type short struct { //want:padding "padded struct short is 56 bytes, not a multiple of the 64-byte cache line (add 8 trailing pad bytes)"
	head atomic.Int64
	_    [48]byte
}

// shared is line-sized but packs both hot words into block 0.
//
//ffq:padded
type shared struct {
	head atomic.Int64
	tail atomic.Int64 //want:padding "atomic fields head and tail of padded struct shared share one 64-byte cache line"
	_    [48]byte
}

// unmarked is as misshapen as short, but carries no marker: the check
// only audits structs that opted in.
type unmarked struct {
	head atomic.Int64
	_    [48]byte
}

// laneBad mirrors the sharded queue's per-producer lane shape — a
// generic element stored by value in an array — minus the trailing
// pad. The checker must measure generic structs too: an array of
// unpadded lanes folds one element's owner word into its neighbour's
// first line, which is exactly the false sharing rule 1 exists for.
//
//ffq:padded
type laneBad[T any] struct { //want:padding "not a multiple"
	next  *T
	owner atomic.Int32
}

// laneGood is the sanctioned lane-array layout: a nested queue struct
// (its internal atomics deliberately not expanded) plus the owner
// word, padded so array neighbours start on fresh lines.
//
//ffq:padded
type laneGood[T any] struct {
	q     innerQ[T]
	owner atomic.Int32
	_     [60]byte
}

// innerQ stands in for the embedded per-lane queue: 64 bytes on any
// 64-bit target (24-byte slice header, 8-byte atomic, 32 pad).
type innerQ[T any] struct {
	buf  []T
	head atomic.Int64
	_    [32]byte
}

// lineCellGood is the line-granular SPSC's packed cell: one sequence
// word plus seven values filling exactly one cache line. Packing many
// values beside one atomic is the design — a single hot word per line
// passes rule 2, and 8+7*8 = 64 passes rule 1.
//
//ffq:padded
type lineCellGood struct {
	seq  atomic.Uint64
	vals [7]uint64
}

// lineCellShort drops one value: 56 bytes, so array neighbours share
// lines and the whole-line publish protocol breaks.
//
//ffq:padded
type lineCellShort struct { //want:padding "padded struct lineCellShort is 56 bytes, not a multiple of the 64-byte cache line (add 8 trailing pad bytes)"
	seq  atomic.Uint64
	vals [6]uint64
}

// lineCellTwoSeqs packs a second sequence word into the same line:
// producer and consumer would ping-pong the line between caches on
// every publish/consume pair.
//
//ffq:padded
type lineCellTwoSeqs struct {
	pseq atomic.Uint64
	cseq atomic.Uint64 //want:padding "atomic fields pseq and cseq of padded struct lineCellTwoSeqs share one 64-byte cache line"
	vals [6]uint64
}
