// Package staleignore is a corpus case for the stale-suppression
// audit: a line-scoped //ffq: directive that no checker consumed this
// run is itself a finding — suppressions must die with the finding
// they justified.
package staleignore

import "sync/atomic"

// counter carries a live suppression: the ignore below consumes a real
// atomic-discipline finding every run, so it is not stale.
type counter struct {
	hits int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	//ffq:ignore atomic-discipline corpus fixture: demonstrating a live suppression
	return c.hits
}

// idle carries a dead suppression: nothing on the covered lines ever
// fires spin-backoff.
func idle() int {
	//want+1:stale-ignore "stale //ffq:ignore spin-backoff"
	//ffq:ignore spin-backoff corpus fixture: nothing here spins
	return 0
}

// quiet shows the audit suppressing itself: the padding ignore is
// stale, but the stale-ignore suppression covering it consumes the
// finding — the escape hatch for directives kept through a refactor.
func quiet() int {
	//ffq:ignore stale-ignore corpus fixture: keeping the dead suppression until the padded variant lands
	//ffq:ignore padding corpus fixture: nothing here is padded
	return 1
}
