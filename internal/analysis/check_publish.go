package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// publishCheck enforces module-wide release/acquire publication
// pairing, the seqlock-torn-read hazard class: when one side of a
// protocol publishes a field with sync/atomic stores, every reader
// anywhere in the module must use atomic loads — a single plain read
// is a Go-memory-model race that the compiler and -race may both miss
// when the interleaving window is narrow.
//
//  1. A plain-typed field written via package-form
//     atomic.Store*/Add*/Swap*/CompareAndSwap* (&s.f handed to
//     sync/atomic) must never be read or written plainly in any
//     *other* package of the module. Same-package mixing is
//     atomic-discipline's jurisdiction; this check covers the
//     cross-package leaks it cannot see.
//  2. A field that is atomically stored (package-form atomic.Store* or
//     method-form .Store on an atomic value type) but never atomically
//     read anywhere in the module is an orphan publication: either the
//     store is dead, or — worse — the readers exist and read plainly.
//
// The //ffq:plainread reason escape hatch sanctions deliberate plain
// accesses, e.g. init-before-publish writes that happen-before the
// queue is shared.
//
// Known false negatives: addresses laundered through intermediate
// pointers (p := &s.f; atomic.StoreInt64(p, v)), accesses via unsafe,
// and atomic loads that exist only in _test.go files (the loader skips
// tests, so such fields still count as orphans — annotate the store).
type publishCheck struct{}

func (publishCheck) ID() string { return "atomic-publish" }
func (publishCheck) Doc() string {
	return "atomically written fields need atomic readers module-wide; stores without any load are orphans"
}

// publishFacts are the module-wide publication facts, computed once
// per Run over every loaded package.
type publishFacts struct {
	// written holds fields whose address reaches a package-form
	// sync/atomic write (Store/Add/Swap/CompareAndSwap), mapped to one
	// representative write position for the report text.
	written map[types.Object]token.Position
	// stored holds fields with an atomic Store (package- or
	// method-form): the release side of a publication.
	stored map[types.Object]bool
	// loaded holds fields with any atomic read — Load, Swap,
	// CompareAndSwap, or Add (all observe the value): the acquire side.
	loaded map[types.Object]bool
	// sanctioned marks the selector expressions that are themselves the
	// &s.f argument of a sync/atomic call.
	sanctioned map[*ast.SelectorExpr]bool
	// pkgAtomic maps each package to the fields it accesses atomically
	// in package form; plain access there is atomic-discipline's to
	// report, not ours.
	pkgAtomic map[*Package]map[types.Object]bool
}

// factPackages returns the package set the cross-package checkers see:
// every package the loader has loaded, or the Run set when there is no
// loader (single-source mode).
func (ctx *Context) factPackages() []*Package {
	if ctx.loader == nil {
		return ctx.pkgs
	}
	pkgs := make([]*Package, 0, len(ctx.loader.pkgs))
	for _, p := range ctx.loader.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}

// publishFacts computes (memoized on the Context) the module-wide
// publication facts.
func (ctx *Context) publishFacts() *publishFacts {
	if ctx.publish != nil {
		return ctx.publish
	}
	facts := &publishFacts{
		written:    make(map[types.Object]token.Position),
		stored:     make(map[types.Object]bool),
		loaded:     make(map[types.Object]bool),
		sanctioned: make(map[*ast.SelectorExpr]bool),
		pkgAtomic:  make(map[*Package]map[types.Object]bool),
	}
	for _, p := range ctx.factPackages() {
		facts.scan(p)
	}
	ctx.publish = facts
	return facts
}

// scan collects the atomic write/read sites of one package.
func (f *publishFacts) scan(p *Package) {
	perPkg := f.pkgAtomic[p]
	if perPkg == nil {
		perPkg = make(map[types.Object]bool)
		f.pkgAtomic[p] = perPkg
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Package form: atomic.StoreInt64(&s.f, v) and friends.
			callee := calleeOf(p.Info, call)
			if pkgPathOf(callee) == "sync/atomic" {
				kind := atomicOpKind(callee.Name())
				if kind == "" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					obj := fieldObjOf(p.Info, sel)
					if obj == nil {
						continue
					}
					f.sanctioned[sel] = true
					perPkg[obj] = true
					switch kind {
					case "store":
						f.stored[obj] = true
						if _, ok := f.written[obj]; !ok {
							f.written[obj] = p.Fset.Position(call.Pos())
						}
					case "write":
						// Add/Swap/CAS both write and observe.
						f.loaded[obj] = true
						if _, ok := f.written[obj]; !ok {
							f.written[obj] = p.Fset.Position(call.Pos())
						}
					case "load":
						f.loaded[obj] = true
					}
				}
				return true
			}
			// Method form: s.f.Store(v) on an atomic value-typed field.
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return true
			}
			recv := s.Recv()
			if ptr, isPtr := recv.(*types.Pointer); isPtr {
				recv = ptr.Elem()
			}
			if !isAtomicValueType(recv) {
				return true
			}
			inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := fieldObjOf(p.Info, inner)
			if obj == nil {
				return true
			}
			switch kind := atomicOpKind(sel.Sel.Name); kind {
			case "store":
				f.stored[obj] = true
			case "write", "load":
				f.loaded[obj] = true
			}
			return true
		})
	}
}

// atomicOpKind classifies a sync/atomic function or method name:
// "store" (pure release), "write" (read-modify-write: observes and
// writes), "load" (pure acquire), or "" for anything else.
func atomicOpKind(name string) string {
	switch {
	case strings.HasPrefix(name, "Store"):
		return "store"
	case strings.HasPrefix(name, "Add"),
		strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"),
		strings.HasPrefix(name, "Or"),
		strings.HasPrefix(name, "And"):
		return "write"
	case strings.HasPrefix(name, "Load"):
		return "load"
	}
	return ""
}

func (c publishCheck) Run(ctx *Context, p *Package) []Finding {
	facts := ctx.publishFacts()
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:     p.Fset.Position(n.Pos()),
			Check:   c.ID(),
			Message: sprintf(format, args...),
		})
	}

	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if facts.sanctioned[n] {
					return true
				}
				obj := fieldObjOf(p.Info, n)
				if obj == nil {
					return true
				}
				wpos, written := facts.written[obj]
				if !written || facts.pkgAtomic[p][obj] {
					// Same-package mixing is atomic-discipline's report.
					return true
				}
				pos := p.Fset.Position(n.Pos())
				if p.Markers.plainread(pos.Filename, pos.Line) {
					return true
				}
				report(n, "plain access to field %s, which is written with sync/atomic at %s; use atomic loads/stores everywhere or annotate //ffq:plainread reason", obj.Name(), wpos)
			case *ast.CallExpr:
				c.checkOrphanStore(p, facts, n, report)
			}
			return true
		})
	}
	return out
}

// checkOrphanStore reports an atomic store of a field that is never
// atomically read anywhere in the module: the release half of a
// publication whose acquire half does not exist.
func (publishCheck) checkOrphanStore(p *Package, facts *publishFacts, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	orphan := func(obj types.Object) bool {
		return obj != nil && facts.stored[obj] && !facts.loaded[obj]
	}
	// Package form: atomic.StoreX(&s.f, v).
	callee := calleeOf(p.Info, call)
	if pkgPathOf(callee) == "sync/atomic" && atomicOpKind(callee.Name()) == "store" {
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if obj := fieldObjOf(p.Info, sel); orphan(obj) {
				report(call, "field %s is atomically stored but never atomically loaded anywhere in the module (dead publication, or racy plain readers)", obj.Name())
			}
		}
		return
	}
	// Method form: s.f.Store(v).
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" {
		return
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	if !isAtomicValueType(recv) {
		return
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if obj := fieldObjOf(p.Info, inner); orphan(obj) {
		report(call, "field %s is atomically stored but never atomically loaded anywhere in the module (dead publication, or racy plain readers)", obj.Name())
	}
}
