package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// wantEntry is one expectation parsed from a corpus //want: comment.
type wantEntry struct {
	file   string
	line   int
	check  string
	substr string
}

func (w wantEntry) String() string {
	s := fmt.Sprintf("%s:%d: want [%s]", w.file, w.line, w.check)
	if w.substr != "" {
		s += fmt.Sprintf(" containing %q", w.substr)
	}
	return s
}

// parseWants extracts the //want: expectations of a loaded package.
// Grammar, as a trailing comment on the offending line:
//
//	//want:check-id
//	//want:check-id "message substring"
//
// The +1 form, on its own line, expects the finding on the following
// line instead — needed for findings positioned at a marker comment
// itself, where no second comment can share the line:
//
//	//want+1:check-id "message substring"
func parseWants(p *Package) ([]wantEntry, error) {
	var wants []wantEntry
	for _, f := range p.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, "//want")
				if !ok {
					continue
				}
				offset := 0
				if r, ok := strings.CutPrefix(rest, "+1"); ok {
					offset, rest = 1, r
				}
				rest, ok = strings.CutPrefix(rest, ":")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				check, arg, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if check == "" || !validCheckID(check) {
					return nil, fmt.Errorf("%s: malformed //want: comment (unknown check %q)", pos, check)
				}
				w := wantEntry{file: pos.Filename, line: pos.Line + offset, check: check}
				arg = strings.TrimSpace(arg)
				if arg != "" {
					sub, err := strconv.Unquote(arg)
					if err != nil {
						return nil, fmt.Errorf("%s: //want: substring must be a quoted string: %v", pos, err)
					}
					w.substr = sub
				}
				wants = append(wants, w)
			}
		}
	}
	return wants, nil
}

// VerifyCorpus loads every package directory under root (the corpus
// layout is root/<case>/*.go), runs the full suite, and checks the
// findings against the //want: comments: every want must be hit and
// every finding must be wanted. It returns the total number of
// findings produced and an error describing any mismatch.
func VerifyCorpus(root string) (int, error) {
	l, err := NewLoader(root)
	if err != nil {
		return 0, err
	}
	return VerifyCorpusWith(l, root)
}

// VerifyCorpusWith is VerifyCorpus on a caller-supplied loader, letting
// a driver share one loader — and with it the source importer's
// compiled-stdlib work, the dominant cost of a load — between the
// corpus self-check and the subsequent tree lint. Corpus packages end
// up in the loader's package map under their testdata import paths;
// they are harmless to later Runs because findings are only reported
// for the packages passed to Run, and corpus packages are never in
// that set.
func VerifyCorpusWith(l *Loader, root string) (int, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return 0, err
	}
	var dirs []string
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return 0, fmt.Errorf("no corpus packages under %s", root)
	}
	total := 0
	var problems []string
	for _, dir := range dirs {
		pkgs, err := l.LoadDirs([]string{dir})
		if err != nil {
			return total, fmt.Errorf("loading corpus %s: %v", dir, err)
		}
		for _, p := range pkgs {
			for _, te := range p.TypeErrors {
				problems = append(problems, fmt.Sprintf("%s: corpus does not type-check: %v", dir, te))
			}
		}
		findings := Run(l, pkgs)
		total += len(findings)
		wants, err := parseWants(pkgs[0])
		if err != nil {
			return total, err
		}
		matched := make([]bool, len(findings))
		for _, w := range wants {
			hit := false
			for i, f := range findings {
				if matched[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line || f.Check != w.check {
					continue
				}
				if w.substr != "" && !strings.Contains(f.Message, w.substr) {
					continue
				}
				matched[i], hit = true, true
				break
			}
			if !hit {
				problems = append(problems, fmt.Sprintf("missing finding: %s", w))
			}
		}
		for i, f := range findings {
			if !matched[i] {
				problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
			}
		}
	}
	if len(problems) > 0 {
		return total, fmt.Errorf("corpus self-check failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return total, nil
}
