package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// markerCheckID is the pseudo-check under which malformed //ffq:
// markers are reported.
const markerCheckID = "marker"

// staleCheckID is the pseudo-check under which suppressions that no
// longer suppress anything are reported (the stale-ignore audit).
const staleCheckID = "stale-ignore"

const markerPrefix = "//ffq:"

// lineDirective is one parsed line-scoped //ffq: directive — ignore,
// plainread, or detached. A directive covers its own line and the
// following line. used records whether any checker actually consumed
// it this run; unconsumed directives are reported as stale.
type lineDirective struct {
	verb   string // "ignore", "plainread", "detached"
	check  string // ignore only: the suppressed check ID (or "all")
	reason string
	pos    token.Position
	used   bool
}

// Markers holds the parsed //ffq: markers of one package.
type Markers struct {
	// Hotpath and PackHelper are the function declarations carrying the
	// corresponding marker; Padded the struct type declarations.
	Hotpath    map[*ast.FuncDecl]bool
	PackHelper map[*ast.FuncDecl]bool
	Padded     map[*ast.TypeSpec]bool
	// directives maps filename -> line -> line-scoped directives
	// (ignore/plainread/detached). A directive covers its own line and
	// the following line.
	directives map[string]map[int][]*lineDirective
	// Bad collects malformed or misplaced markers as findings.
	Bad []Finding
}

// at returns the directives of the given verb covering (file, line):
// those written on the line itself or on the line above.
func (m *Markers) at(verb, file string, line int) []*lineDirective {
	if m == nil {
		return nil
	}
	lines := m.directives[file]
	var out []*lineDirective
	for _, ln := range [2]int{line, line - 1} {
		for _, d := range lines[ln] {
			if d.verb == verb {
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether an //ffq:ignore directive covers f, and
// marks any matching directive as used.
func (m *Markers) suppressed(f Finding) bool {
	hit := false
	for _, d := range m.at("ignore", f.Pos.Filename, f.Pos.Line) {
		if d.check == "all" || d.check == f.Check {
			d.used = true
			hit = true
		}
	}
	return hit
}

// plainread reports whether an //ffq:plainread directive covers
// (file, line) — the sanctioned init-before-publish escape hatch of
// the atomic-publish check — and marks it used.
func (m *Markers) plainread(file string, line int) bool {
	ds := m.at("plainread", file, line)
	for _, d := range ds {
		d.used = true
	}
	return len(ds) > 0
}

// detached reports whether an //ffq:detached directive covers
// (file, line) — the goroutine-lifecycle escape hatch for goroutines
// that legitimately outlive their spawner — and marks it used.
func (m *Markers) detached(file string, line int) bool {
	ds := m.at("detached", file, line)
	for _, d := range ds {
		d.used = true
	}
	return len(ds) > 0
}

// staleDirectives returns the line-scoped directives no checker
// consumed this run, in file order. Callers emit them under
// staleCheckID after the checker pass.
func (m *Markers) staleDirectives() []*lineDirective {
	if m == nil {
		return nil
	}
	var out []*lineDirective
	for _, byLine := range m.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				if !d.used {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// staleMessage renders the stale-ignore finding text for a directive.
func staleMessage(d *lineDirective) string {
	switch d.verb {
	case "ignore":
		return "stale //ffq:ignore " + d.check + ": the check no longer fires on this or the next line (remove the suppression)"
	case "plainread":
		return "stale //ffq:plainread: no plain access to an atomically published field on this or the next line (remove the escape hatch)"
	case "detached":
		return "stale //ffq:detached: no go statement on this or the next line (remove the annotation)"
	}
	return "stale //ffq:" + d.verb
}

// parseMarkers extracts every //ffq: marker from the files, attaching
// declaration markers to their declarations and recording malformed
// ones as findings.
func parseMarkers(fset *token.FileSet, files []*ast.File) *Markers {
	m := &Markers{
		Hotpath:    make(map[*ast.FuncDecl]bool),
		PackHelper: make(map[*ast.FuncDecl]bool),
		Padded:     make(map[*ast.TypeSpec]bool),
		directives: make(map[string]map[int][]*lineDirective),
	}
	consumed := make(map[*ast.Comment]bool)

	markerIn := func(g *ast.CommentGroup, verb string) *ast.Comment {
		if g == nil {
			return nil
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, markerPrefix)
			if !ok {
				continue
			}
			v, _, _ := strings.Cut(rest, " ")
			if v == verb {
				return c
			}
		}
		return nil
	}

	addDirective := func(pos token.Position, d *lineDirective) {
		byLine := m.directives[pos.Filename]
		if byLine == nil {
			byLine = make(map[int][]*lineDirective)
			m.directives[pos.Filename] = byLine
		}
		d.pos = pos
		byLine[pos.Line] = append(byLine[pos.Line], d)
	}

	for _, f := range files {
		// Pass 1: declaration markers in doc comments.
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if c := markerIn(d.Doc, "hotpath"); c != nil {
					m.Hotpath[d] = true
					consumed[c] = true
				}
				if c := markerIn(d.Doc, "packhelper"); c != nil {
					m.PackHelper[d] = true
					consumed[c] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
					if len(d.Specs) == 1 {
						groups = append(groups, d.Doc)
					}
					for _, g := range groups {
						if c := markerIn(g, "padded"); c != nil {
							m.Padded[ts] = true
							consumed[c] = true
						}
					}
				}
			}
		}
		// Pass 2: line-scoped directives and leftover (malformed or
		// misplaced) markers.
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, markerPrefix)
				if !ok || consumed[c] {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, args, _ := strings.Cut(rest, " ")
				switch verb {
				case "ignore":
					fields := strings.Fields(args)
					if len(fields) < 2 {
						m.bad(pos, "//ffq:ignore needs a check ID and a reason: //ffq:ignore CHECK reason...")
						continue
					}
					if !validCheckID(fields[0]) {
						m.bad(pos, "//ffq:ignore names unknown check %q (known: "+strings.Join(CheckIDs(), ", ")+", all)", fields[0])
						continue
					}
					addDirective(pos, &lineDirective{
						verb:   "ignore",
						check:  fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				case "plainread", "detached":
					reason := strings.TrimSpace(args)
					if reason == "" {
						m.bad(pos, "//ffq:%s needs a justification: //ffq:%s reason...", verb, verb)
						continue
					}
					addDirective(pos, &lineDirective{verb: verb, reason: reason})
				case "hotpath", "packhelper":
					m.bad(pos, "//ffq:%s must be in the doc comment of a function declaration", verb)
				case "padded":
					m.bad(pos, "//ffq:padded must be in the doc comment of a struct type declaration")
				default:
					m.bad(pos, "unknown marker //ffq:%s", verb)
				}
			}
		}
	}
	return m
}

func (m *Markers) bad(pos token.Position, format string, args ...any) {
	m.Bad = append(m.Bad, Finding{
		Pos:     pos,
		Check:   markerCheckID,
		Message: sprintf(format, args...),
	})
}
