package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// markerCheckID is the pseudo-check under which malformed //ffq:
// markers are reported.
const markerCheckID = "marker"

const markerPrefix = "//ffq:"

// ignoreDirective is one parsed //ffq:ignore comment.
type ignoreDirective struct {
	check  string
	reason string
}

// Markers holds the parsed //ffq: markers of one package.
type Markers struct {
	// Hotpath and PackHelper are the function declarations carrying the
	// corresponding marker; Padded the struct type declarations.
	Hotpath    map[*ast.FuncDecl]bool
	PackHelper map[*ast.FuncDecl]bool
	Padded     map[*ast.TypeSpec]bool
	// ignores maps filename -> line -> directives. A directive
	// suppresses findings on its own line and the following line.
	ignores map[string]map[int][]ignoreDirective
	// Bad collects malformed or misplaced markers as findings.
	Bad []Finding
}

// suppressed reports whether an //ffq:ignore directive covers f.
func (m *Markers) suppressed(f Finding) bool {
	if m == nil {
		return false
	}
	lines := m.ignores[f.Pos.Filename]
	for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[ln] {
			if d.check == "all" || d.check == f.Check {
				return true
			}
		}
	}
	return false
}

// parseMarkers extracts every //ffq: marker from the files, attaching
// declaration markers to their declarations and recording malformed
// ones as findings.
func parseMarkers(fset *token.FileSet, files []*ast.File) *Markers {
	m := &Markers{
		Hotpath:    make(map[*ast.FuncDecl]bool),
		PackHelper: make(map[*ast.FuncDecl]bool),
		Padded:     make(map[*ast.TypeSpec]bool),
		ignores:    make(map[string]map[int][]ignoreDirective),
	}
	consumed := make(map[*ast.Comment]bool)

	markerIn := func(g *ast.CommentGroup, verb string) *ast.Comment {
		if g == nil {
			return nil
		}
		for _, c := range g.List {
			rest, ok := strings.CutPrefix(c.Text, markerPrefix)
			if !ok {
				continue
			}
			v, _, _ := strings.Cut(rest, " ")
			if v == verb {
				return c
			}
		}
		return nil
	}

	for _, f := range files {
		// Pass 1: declaration markers in doc comments.
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if c := markerIn(d.Doc, "hotpath"); c != nil {
					m.Hotpath[d] = true
					consumed[c] = true
				}
				if c := markerIn(d.Doc, "packhelper"); c != nil {
					m.PackHelper[d] = true
					consumed[c] = true
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
					if len(d.Specs) == 1 {
						groups = append(groups, d.Doc)
					}
					for _, g := range groups {
						if c := markerIn(g, "padded"); c != nil {
							m.Padded[ts] = true
							consumed[c] = true
						}
					}
				}
			}
		}
		// Pass 2: ignore directives and leftover (malformed/misplaced)
		// markers.
		for _, g := range f.Comments {
			for _, c := range g.List {
				rest, ok := strings.CutPrefix(c.Text, markerPrefix)
				if !ok || consumed[c] {
					continue
				}
				pos := fset.Position(c.Pos())
				verb, args, _ := strings.Cut(rest, " ")
				switch verb {
				case "ignore":
					fields := strings.Fields(args)
					if len(fields) < 2 {
						m.bad(pos, "//ffq:ignore needs a check ID and a reason: //ffq:ignore CHECK reason...")
						continue
					}
					if !validCheckID(fields[0]) {
						m.bad(pos, "//ffq:ignore names unknown check %q (known: "+strings.Join(CheckIDs(), ", ")+", all)", fields[0])
						continue
					}
					byLine := m.ignores[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]ignoreDirective)
						m.ignores[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{
						check:  fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				case "hotpath", "packhelper":
					m.bad(pos, "//ffq:%s must be in the doc comment of a function declaration", verb)
				case "padded":
					m.bad(pos, "//ffq:padded must be in the doc comment of a struct type declaration")
				default:
					m.bad(pos, "unknown marker //ffq:%s", verb)
				}
			}
		}
	}
	return m
}

func (m *Markers) bad(pos token.Position, format string, args ...any) {
	m.Bad = append(m.Bad, Finding{
		Pos:     pos,
		Check:   markerCheckID,
		Message: sprintf(format, args...),
	})
}
