package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// allocCheck extends the static allocation-freedom story of
// //ffq:hotpath functions beyond what hotpath-purity already polices.
// hotpath-purity flags every composite literal, append, closure,
// string concatenation, and interface-boxing argument *inside the
// marked body*; this check adds the two heap classes purity does not
// see there, and — reusing check_spin's one-level helper expansion —
// applies the full allocation rule set one call level deep into
// //ffq:packhelper helpers, which purity never enters:
//
//   - map index-assign (m[k] = v hashes and may grow buckets) in the
//     marked body and in helpers;
//   - the address of a local escaping via return or assignment to a
//     heap location (return &x, s.p = &x), which forces x onto the
//     heap, in the marked body and in helpers;
//   - inside //ffq:packhelper helpers called from a hot path:
//     composite literals, closures, make/new, append on anything but a
//     reslice of an existing buffer (append(buf[:0], ...) reuses
//     capacity; append(s, ...) may grow), non-constant string
//     concatenation, and non-constant values boxed into interface
//     parameters — including the implicit conversions at fmt/error
//     call sites.
//
// The static view is cross-validated dynamically: the repo's
// testing.AllocsPerRun gate requires zero allocations per op on every
// exported bounded-queue hot path, so a construct this check misses
// still fails CI, and a finding this check reports that AllocsPerRun
// cannot reproduce is a candidate false positive to suppress with
// //ffq:ignore hotpath-alloc reason.
//
// Known false negatives: escapes through more than one assignment
// (p := &x; s.f = p), allocation two or more call levels deep, and
// helpers invoked through interfaces or function values (the expansion
// resolves direct calls only).
type allocCheck struct{}

func (allocCheck) ID() string { return "hotpath-alloc" }
func (allocCheck) Doc() string {
	return "//ffq:hotpath functions and their //ffq:packhelper helpers must be allocation-free"
}

func (c allocCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	// helpers collects the //ffq:packhelper callees reached from the
	// hot paths of this package, deduplicated so a helper shared by
	// several hot paths is audited (and reported) once.
	type helperTarget struct {
		fd  *ast.FuncDecl
		pkg *Package
	}
	helpers := make(map[*ast.FuncDecl]helperTarget)

	for fd := range p.Markers.Hotpath {
		if fd.Body == nil {
			continue
		}
		name := funcDeclName(fd)
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:     p.Fset.Position(n.Pos()),
				Check:   c.ID(),
				Message: sprintf(format, args...) + " in hotpath function " + name,
			})
		}
		c.walkBody(p, fd.Body, report)
		for _, call := range callsOutsideGuards(p, fd.Body) {
			callee := calleeOf(p.Info, call)
			if callee == nil {
				continue
			}
			hfd := ctx.declOf(callee)
			if hfd == nil || hfd.Body == nil {
				continue
			}
			hp := packageAt(ctx, p, hfd)
			if hp == nil || !hp.Markers.PackHelper[hfd] {
				continue
			}
			helpers[hfd] = helperTarget{fd: hfd, pkg: hp}
		}
	}

	// Audit each reached helper once, in source order for determinism.
	ordered := make([]helperTarget, 0, len(helpers))
	for _, h := range helpers {
		ordered = append(ordered, h)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fd.Pos() < ordered[j].fd.Pos() })
	for _, h := range ordered {
		hname := funcDeclName(h.fd)
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:     h.pkg.Fset.Position(n.Pos()),
				Check:   c.ID(),
				Message: sprintf(format, args...) + " in //ffq:packhelper helper " + hname + " reached from a hotpath function",
			})
		}
		c.walkHelper(h.pkg, h.fd.Body, report)
	}
	return out
}

// walkBody applies the in-body rules — the classes hotpath-purity does
// not already flag — pruning instrumentation-guarded blocks and
// function literals exactly like purity does.
func (c allocCheck) walkBody(p *Package, body ast.Node, report func(ast.Node, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // purity reports the closure itself
		case *ast.IfStmt:
			if isRecorderGuard(p.Info, n.Cond) {
				if n.Init != nil {
					c.walkBody(p, n.Init, report)
				}
				if n.Else != nil {
					c.walkBody(p, n.Else, report)
				}
				return false
			}
		case *ast.AssignStmt:
			checkMapAssign(p, n, report)
			checkEscapingAssign(p, n, report)
		case *ast.ReturnStmt:
			checkEscapingReturn(p, n, report)
		}
		return true
	})
}

// walkHelper applies the full allocation rule set to a
// //ffq:packhelper body.
func (c allocCheck) walkHelper(p *Package, body ast.Node, report func(ast.Node, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "function literal (closure allocation)")
			return false
		case *ast.CompositeLit:
			report(n, "composite literal (allocates or copies)")
			return false
		case *ast.AssignStmt:
			checkMapAssign(p, n, report)
			checkEscapingAssign(p, n, report)
		case *ast.ReturnStmt:
			checkEscapingReturn(p, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConstExpr(p.Info, n) {
				if t := typeOf(p.Info, n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation (allocates)")
					}
				}
			}
		case *ast.CallExpr:
			c.checkHelperCall(p, n, report)
		}
		return true
	})
}

// checkHelperCall flags allocating builtins and interface boxing in a
// helper body.
func (c allocCheck) checkHelperCall(p *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if isConversion(p.Info, call) {
		if len(call.Args) == 1 {
			hotpathCheck{}.checkBox(p, typeOf(p.Info, call.Fun), call.Args[0], "conversion boxes", report)
			checkAllocConversion(p, call, report)
		}
		return
	}
	callee := calleeOf(p.Info, call)
	if b, ok := callee.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			report(call, b.Name()+" (allocates)")
		case "append":
			checkAppendGrow(call, report)
		}
		return
	}
	// Boxing through interface-typed parameters, including the
	// implicit ...any conversions at fmt/error call sites.
	sig, _ := typeOf(p.Info, call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() > 0 {
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		hotpathCheck{}.checkBox(p, pt, arg, "argument boxes", report)
	}
}

// checkAppendGrow flags append calls whose destination is not a
// reslice: append(buf[:0], ...) reuses preallocated capacity, while
// append(s, ...) on a bare slice may grow and reallocate.
func checkAppendGrow(call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
		return
	}
	report(call, "append on a non-preallocated slice (may grow and reallocate)")
}

// checkMapAssign flags assignments through a map index: hashing plus
// possible bucket growth on the hot path.
func checkMapAssign(p *Package, n *ast.AssignStmt, report func(ast.Node, string, ...any)) {
	for _, lhs := range n.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := typeOf(p.Info, ix.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				report(lhs, "map index-assign (hashes and may grow buckets)")
			}
		}
	}
}

// checkEscapingReturn flags return &x where x is a local: the return
// forces x onto the heap.
func checkEscapingReturn(p *Package, n *ast.ReturnStmt, report func(ast.Node, string, ...any)) {
	for _, r := range n.Results {
		if id := addrOfLocal(p.Info, r); id != nil {
			report(r, "address of local "+id.Name+" escapes via return (heap allocation)")
		}
	}
}

// checkEscapingAssign flags s.f = &x / *p = &x / a[i] = &x where x is
// a local: the assignment publishes the address beyond the frame.
func checkEscapingAssign(p *Package, n *ast.AssignStmt, report func(ast.Node, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if id := addrOfLocal(p.Info, n.Rhs[i]); id != nil {
			report(n.Rhs[i], "address of local "+id.Name+" escapes via assignment to a heap location (heap allocation)")
		}
	}
}

// addrOfLocal matches &x where x resolves to a function-local variable
// (including parameters), returning the identifier or nil.
func addrOfLocal(info *types.Info, e ast.Expr) *ast.Ident {
	un, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	id, ok := ast.Unparen(un.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level variables already live statically
	}
	return id
}

// callsOutsideGuards collects the call expressions of a hotpath body
// that sit on the fast path: instrumentation-guarded blocks and
// function literals are pruned.
func callsOutsideGuards(p *Package, body ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			if isRecorderGuard(p.Info, n.Cond) {
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				if n.Else != nil {
					ast.Inspect(n.Else, walk)
				}
				return false
			}
		case *ast.CallExpr:
			calls = append(calls, n)
		}
		return true
	}
	ast.Inspect(body, walk)
	return calls
}
