package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathCheck enforces purity of functions marked //ffq:hotpath (the
// Enqueue/Dequeue/batch paths): no allocation, no calls into
// fmt/time/sync/os/log/reflect, no map iteration, no interface boxing,
// no goroutine spawns, no defers.
//
// Blocks guarded by an instrumentation nil-check — an if statement
// whose condition (or any && conjunct of it) is `x != nil` where x is
// a *Recorder, or one of its *Latency / *Stall extensions — are exempt
// from every rule: the repo-wide contract is that such blocks are off
// the uninstrumented fast path and cost one predicted branch when
// disabled. The Latency/Stall exemption exists for the timestamp and
// record calls of the tail-latency instrumentation, which sit behind
// exactly such guards.
type hotpathCheck struct{}

func (hotpathCheck) ID() string { return "hotpath-purity" }
func (hotpathCheck) Doc() string {
	return "//ffq:hotpath functions must not allocate, box, call fmt/time/sync, or range over maps"
}

// hotpathDeniedPkgs are packages a hot path must never call into
// outside an instrumentation guard. sync/atomic and runtime are
// explicitly fine.
var hotpathDeniedPkgs = map[string]bool{
	"fmt": true, "time": true, "sync": true, "os": true,
	"log": true, "reflect": true,
}

func (c hotpathCheck) Run(ctx *Context, p *Package) []Finding {
	var out []Finding
	for fd := range p.Markers.Hotpath {
		if fd.Body == nil {
			continue
		}
		name := funcDeclName(fd)
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:     p.Fset.Position(n.Pos()),
				Check:   c.ID(),
				Message: sprintf(format, args...) + " in hotpath function " + name,
			})
		}
		c.walkStmts(p, fd.Body, report)
	}
	return out
}

// walkStmts walks a statement tree, pruning instrumentation-guarded
// if-bodies and function literals.
func (c hotpathCheck) walkStmts(p *Package, body ast.Node, report func(ast.Node, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "function literal (closure allocation)")
			return false
		case *ast.IfStmt:
			if isRecorderGuard(p.Info, n.Cond) {
				// The guarded block is off-path; keep checking Init,
				// the condition itself, and the else branch.
				if n.Init != nil {
					c.walkStmts(p, n.Init, report)
				}
				if n.Else != nil {
					c.walkStmts(p, n.Else, report)
				}
				return false
			}
		case *ast.GoStmt:
			report(n, "goroutine spawn")
		case *ast.DeferStmt:
			report(n, "defer")
		case *ast.RangeStmt:
			if t := typeOf(p.Info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n, "range over map (random iteration, hidden hashing)")
				}
			}
		case *ast.CompositeLit:
			report(n, "composite literal (allocates or copies)")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConstExpr(p.Info, n) {
				if t := typeOf(p.Info, n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation (allocates)")
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(p, n, report)
		}
		return true
	})
}

// checkCall applies the call rules: no denied packages, no allocating
// builtins, no boxing conversions or arguments.
func (c hotpathCheck) checkCall(p *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	if isConversion(p.Info, call) {
		if len(call.Args) == 1 {
			c.checkBox(p, typeOf(p.Info, call.Fun), call.Args[0], "conversion boxes", report)
			checkAllocConversion(p, call, report)
		}
		return
	}
	callee := calleeOf(p.Info, call)
	if b, ok := callee.(*types.Builtin); ok {
		switch b.Name() {
		case "make", "new":
			report(call, b.Name()+" (allocates)")
		case "append":
			report(call, "append (may allocate)")
		case "panic":
			// Allowed: terminal path. Constant arguments are boxed at
			// compile time; non-constant arguments box at runtime but
			// only when already failing.
		}
		return
	}
	if pkg := pkgPathOf(callee); hotpathDeniedPkgs[pkg] {
		report(call, "call into package "+pkg)
	}
	// Boxing through interface-typed parameters.
	sig, _ := typeOf(p.Info, call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() > 0 {
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(p, pt, arg, "argument boxes", report)
	}
}

// checkBox flags a non-constant, non-interface value flowing into an
// interface-typed slot.
func (hotpathCheck) checkBox(p *Package, dst types.Type, src ast.Expr, what string, report func(ast.Node, string, ...any)) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := typeOf(p.Info, src)
	if st == nil {
		return
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return
	}
	if isConstExpr(p.Info, src) {
		return // constants box into static data at compile time
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	report(src, what+" "+typeString(st)+" into interface "+typeString(dst))
}

// checkAllocConversion flags conversions that copy memory:
// string<->[]byte/[]rune.
func checkAllocConversion(p *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	dst := typeOf(p.Info, call.Fun)
	src := typeOf(p.Info, call.Args[0])
	if dst == nil || src == nil || isConstExpr(p.Info, call) {
		return
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isSlice := func(t types.Type) bool {
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	if (isStr(dst) && isSlice(src)) || (isSlice(dst) && isStr(src)) {
		report(call, "string/slice conversion (copies and allocates)")
	}
}

// isRecorderGuard reports whether cond is an instrumentation
// nil-check: `x != nil` (or a && chain containing one) where x's type
// is a pointer to one of the sanctioned instrumentation types
// (Recorder, or its Latency / Stall extensions).
func isRecorderGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND:
		return isRecorderGuard(info, be.X) || isRecorderGuard(info, be.Y)
	case token.NEQ:
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			x, y := pair[0], pair[1]
			if id, ok := ast.Unparen(y).(*ast.Ident); !ok || id.Name != "nil" {
				continue
			} else if info.Uses[id] != types.Universe.Lookup("nil") && info.Uses[id] != nil {
				continue
			}
			if isRecorderPtr(typeOf(info, x)) {
				return true
			}
		}
	}
	return false
}

// instrumentationGuardTypes are the named types whose pointer
// nil-checks sanction a guarded block: the Recorder itself plus its
// per-op latency and stall-watchdog extensions, which hold the
// timestamp/record calls a latency-instrumented hot path makes.
var instrumentationGuardTypes = map[string]bool{
	"Recorder": true,
	"Latency":  true,
	"Stall":    true,
}

// isRecorderPtr reports whether t is a pointer to one of the
// sanctioned instrumentation types (*Recorder, *Latency, *Stall).
func isRecorderPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj() != nil && instrumentationGuardTypes[named.Obj().Name()]
}
