package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary byte streams at the frame reader
// and every parser: truncated, oversized and garbage frames must
// surface as errors, never as panics, unbounded reads or out-of-range
// slices. Valid PRODUCE batches additionally round-trip through the
// encoder byte-for-byte.
func FuzzFrameDecode(f *testing.F) {
	var b Buffer
	b.PutPing(7, true)
	b.PutProduce(0, []byte("orders"), [][]byte{[]byte("a"), []byte("bb"), nil})
	b.PutConsume([]byte("orders"), 16)
	b.PutAck(FlagEnd, []byte("orders"), 12)
	b.PutCredit([]byte("x"), 1)
	b.PutErr("nope")
	b.PutConsumeFrom([]byte("orders"), 16, 1234, []byte("grp"))
	b.PutDeliverOffsets([]byte("orders"), 99, [][]byte{[]byte("m")})
	b.PutOffsetsReq([]byte("orders"), []byte("grp"))
	b.PutOffsetsResp([]byte("orders"), 1, 2, OffsetCursor)
	f.Add(b.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, TPing, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for frames := 0; frames < 1024; frames++ {
			fr, err := r.Next()
			if err != nil {
				return // fail-closed: any malformed input ends the stream
			}
			if len(fr.Body) > MaxFrame-2 {
				t.Fatalf("reader passed an oversized body: %d", len(fr.Body))
			}
			switch fr.Type {
			case TPing:
				if _, err := ParsePing(fr); err != nil {
					return
				}
			case TProduce:
				if fr.Flags&FlagOffset != 0 {
					topic, _, b, err := ParseDeliverOffsets(fr)
					if err != nil {
						return
					}
					if b.N > MaxBatch || len(topic) > MaxTopic {
						t.Fatalf("deliver-offsets passed oversized fields: n=%d topic=%d", b.N, len(topic))
					}
					for {
						if _, ok := b.Next(); !ok {
							break
						}
					}
					return
				}
				p, err := ParseProduce(fr)
				if err != nil {
					return
				}
				if p.N > MaxBatch {
					t.Fatalf("parser passed an oversized batch: %d", p.N)
				}
				if len(p.Topic) > MaxTopic {
					t.Fatalf("parser passed an oversized topic: %d", len(p.Topic))
				}
				// Iterate a copy so the re-encode below sees the full batch.
				it := p
				n := 0
				for {
					m, ok := it.Next()
					if !ok {
						break
					}
					_ = m
					n++
				}
				if n != p.N {
					t.Fatalf("iterator yielded %d of %d messages", n, p.N)
				}
				// A validated batch must re-encode to the identical frame.
				cp := p
				msgs := CopyMessages(&cp.Batch)
				var enc Buffer
				enc.PutProduce(fr.Flags, p.Topic, msgs)
				raw := enc.Bytes()
				if !bytes.Equal(raw[headerSize:], fr.Body) {
					t.Fatalf("re-encode mismatch:\n got %x\nwant %x", raw[headerSize:], fr.Body)
				}
			case TConsume:
				if fr.Flags&FlagOffset != 0 {
					if topic, _, _, group, err := ParseConsumeFrom(fr); err == nil &&
						(len(topic) > MaxTopic || len(group) > MaxGroup) {
						t.Fatalf("oversized consume-from fields: topic=%d group=%d", len(topic), len(group))
					}
				} else if topic, _, err := ParseConsume(fr); err == nil && len(topic) > MaxTopic {
					t.Fatalf("oversized topic passed: %d", len(topic))
				}
			case TAck:
				_, _, _ = ParseAck(fr)
			case TCredit:
				_, _, _ = ParseCredit(fr)
			case TOffsets:
				if fr.Flags&FlagReply != 0 {
					_, _, _, _, _ = ParseOffsetsResp(fr)
				} else if topic, group, err := ParseOffsetsReq(fr); err == nil &&
					(len(topic) > MaxTopic || len(group) > MaxGroup) {
					t.Fatalf("oversized offsets-req fields: topic=%d group=%d", len(topic), len(group))
				}
			case TErr:
				if msg, err := ParseErr(fr); err == nil && len(msg) > MaxFrame {
					t.Fatalf("oversized error passed: %d", len(msg))
				}
			default:
				// Unknown types surface to the caller, which rejects
				// them at the protocol layer; the framing itself is fine.
			}
		}
	})
}
