package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary byte streams at the frame reader
// and every parser: truncated, oversized and garbage frames must
// surface as errors, never as panics, unbounded reads or out-of-range
// slices. Valid PRODUCE batches additionally round-trip through the
// encoder byte-for-byte, in both the unpartitioned and partitioned
// forms.
func FuzzFrameDecode(f *testing.F) {
	var b Buffer
	b.PutPing(7, true)
	b.PutProduce(0, []byte("orders"), NoPartition, [][]byte{[]byte("a"), []byte("bb"), nil})
	b.PutConsume([]byte("orders"), NoPartition, 16)
	b.PutAck(FlagEnd, []byte("orders"), NoPartition, 12)
	b.PutCredit([]byte("x"), NoPartition, 1)
	b.PutErr("nope")
	b.PutConsumeFrom([]byte("orders"), NoPartition, 16, 1234, []byte("grp"), false)
	b.PutDeliverOffsets([]byte("orders"), NoPartition, 99, [][]byte{[]byte("m")})
	b.PutOffsetsReq([]byte("orders"), NoPartition, []byte("grp"))
	b.PutOffsetsResp([]byte("orders"), NoPartition, 1, 2, OffsetCursor)
	f.Add(b.Bytes())

	// The partitioned vocabulary: every FlagPart form, the strict
	// replay subscription, METADATA both ways and typed ERR bodies.
	var p Buffer
	p.PutProduce(0, []byte("orders"), 3, [][]byte{[]byte("k1"), []byte("k2")})
	p.PutConsume([]byte("orders"), 3, 16)
	p.PutConsumeFrom([]byte("orders"), 3, 16, 1234, []byte("__replica/n2"), true)
	p.PutDeliverOffsets([]byte("orders"), 3, 99, [][]byte{[]byte("m")})
	p.PutAck(FlagOffset, []byte("orders"), 3, 12)
	p.PutCredit([]byte("orders"), 3, 1)
	p.PutOffsetsReq([]byte("orders"), 3, []byte("grp"))
	p.PutOffsetsResp([]byte("orders"), 3, 1, 2, OffsetCursor)
	p.PutMetaReq()
	p.PutMetaResp(MetaResp{
		NodeID: "n1", Partitions: 8, Replication: 2,
		Nodes:  []NodeMeta{{ID: "n1", Addr: "127.0.0.1:7077"}, {ID: "n2", Addr: "127.0.0.1:7078"}},
		Topics: []string{"orders", "audit"},
	})
	p.PutErrCode(ECodeTruncated, 4096, "truncated")
	p.PutErrCode(ECodeNotOwner, 3, "not owner")
	f.Add(p.Bytes())

	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, TPing, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, headerSize))
	// A PRODUCE claiming FlagPart with the explicit NoPartition
	// sentinel in the field — must fail closed, never alias.
	f.Add([]byte{0, 0, 0, 13, TProduce, FlagPart, 0, 1, 't', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for frames := 0; frames < 1024; frames++ {
			fr, err := r.Next()
			if err != nil {
				return // fail-closed: any malformed input ends the stream
			}
			if len(fr.Body) > MaxFrame-2 {
				t.Fatalf("reader passed an oversized body: %d", len(fr.Body))
			}
			switch fr.Type {
			case TPing:
				if _, err := ParsePing(fr); err != nil {
					return
				}
			case TProduce:
				if fr.Flags&FlagOffset != 0 {
					topic, part, _, b, err := ParseDeliverOffsets(fr)
					if err != nil {
						return
					}
					if b.N > MaxBatch || len(topic) > MaxTopic {
						t.Fatalf("deliver-offsets passed oversized fields: n=%d topic=%d", b.N, len(topic))
					}
					if fr.Flags&FlagPart != 0 && part == NoPartition {
						t.Fatal("deliver-offsets passed the NoPartition sentinel")
					}
					for {
						if _, ok := b.Next(); !ok {
							break
						}
					}
					return
				}
				p, err := ParseProduce(fr)
				if err != nil {
					return
				}
				if p.N > MaxBatch {
					t.Fatalf("parser passed an oversized batch: %d", p.N)
				}
				if len(p.Topic) > MaxTopic {
					t.Fatalf("parser passed an oversized topic: %d", len(p.Topic))
				}
				if fr.Flags&FlagPart != 0 && p.Part == NoPartition {
					t.Fatal("parser passed the NoPartition sentinel")
				}
				// Iterate a copy so the re-encode below sees the full batch.
				it := p
				n := 0
				for {
					m, ok := it.Next()
					if !ok {
						break
					}
					_ = m
					n++
				}
				if n != p.N {
					t.Fatalf("iterator yielded %d of %d messages", n, p.N)
				}
				// A validated batch must re-encode to the identical frame.
				cp := p
				msgs := CopyMessages(&cp.Batch)
				var enc Buffer
				enc.PutProduce(fr.Flags&^byte(FlagPart), p.Topic, p.Part, msgs)
				raw := enc.Bytes()
				if raw[5] != fr.Flags {
					t.Fatalf("re-encode flags mismatch: got %x want %x", raw[5], fr.Flags)
				}
				if !bytes.Equal(raw[headerSize:], fr.Body) {
					t.Fatalf("re-encode mismatch:\n got %x\nwant %x", raw[headerSize:], fr.Body)
				}
			case TConsume:
				if fr.Flags&FlagOffset != 0 {
					if cf, err := ParseConsumeFrom(fr); err == nil &&
						(len(cf.Topic) > MaxTopic || len(cf.Group) > MaxGroup) {
						t.Fatalf("oversized consume-from fields: topic=%d group=%d", len(cf.Topic), len(cf.Group))
					}
				} else if topic, _, _, err := ParseConsume(fr); err == nil && len(topic) > MaxTopic {
					t.Fatalf("oversized topic passed: %d", len(topic))
				}
			case TAck:
				_, _, _, _ = ParseAck(fr)
			case TCredit:
				_, _, _, _ = ParseCredit(fr)
			case TOffsets:
				if fr.Flags&FlagReply != 0 {
					_, _, _, _, _, _ = ParseOffsetsResp(fr)
				} else if topic, _, group, err := ParseOffsetsReq(fr); err == nil &&
					(len(topic) > MaxTopic || len(group) > MaxGroup) {
					t.Fatalf("oversized offsets-req fields: topic=%d group=%d", len(topic), len(group))
				}
			case TMeta:
				if fr.Flags&FlagReply != 0 {
					if m, err := ParseMetaResp(fr); err == nil &&
						(len(m.Nodes) > MaxNodes || len(m.Topics) > MaxMetaTopics) {
						t.Fatalf("oversized meta passed: nodes=%d topics=%d", len(m.Nodes), len(m.Topics))
					}
				} else {
					_ = ParseMetaReq(fr)
				}
			case TErr:
				if msg, err := ParseErr(fr); err == nil && len(msg) > MaxFrame {
					t.Fatalf("oversized error passed: %d", len(msg))
				}
			default:
				// Unknown types surface to the caller, which rejects
				// them at the protocol layer; the framing itself is fine.
			}
		}
	})
}
