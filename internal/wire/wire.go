// Package wire defines ffqd's framing: length-prefixed binary frames
// carrying batched produce/deliver payloads, subscriptions, cumulative
// acknowledgements, credit grants and pings.
//
// # Frame layout
//
// Every frame is
//
//	uint32  length   (big-endian; covers type + flags + body)
//	uint8   type     (TPing .. TErr)
//	uint8   flags
//	[]byte  body     (length - 2 bytes)
//
// Bodies that name a topic start with `uint16 len | topic bytes`.
// PRODUCE bodies are batch-aware: one frame carries `uint32 count`
// followed by count `uint32 len | payload` messages, so the framing
// cost amortizes across a batch exactly like the queue's EnqueueBatch.
//
// # Direction and semantics
//
//	PING    both ways    8-byte token; the peer echoes it with FlagPong.
//	PRODUCE client→broker topic + message batch. The broker acknowledges
//	        cumulatively per connection (ACK).
//	        broker→client the same frame with FlagDeliver set delivers a
//	        batch to a subscribed consumer.
//	CONSUME client→broker topic + initial credit: subscribe. The broker
//	        may deliver at most `credit` messages until CREDIT grants more.
//	ACK     broker→client topic + uint64 seq: the first seq messages
//	        produced on this connection for the topic have been accepted
//	        into the topic queue. With FlagEnd it is the subscription's
//	        end-of-stream marker (broker shutdown after drain).
//	CREDIT  client→broker topic + uint32 n: grant n more deliveries.
//	ERR     broker→client human-readable reason; the sender closes the
//	        connection after writing it.
//	OFFSETS client→broker topic + consumer group: ask for the topic's
//	        durable offset range. The broker replies with the same type
//	        and FlagReply set, carrying oldest/next/cursor.
//
// # Durable-topic extensions (FlagOffset)
//
// Durable topics assign every message a monotonic per-topic offset and
// persist batches to a write-ahead log (internal/wal). Three frames
// grow offset-aware forms, all gated by FlagOffset so the classic
// in-memory protocol is untouched:
//
//	CONSUME+FlagOffset  topic + credit + uint64 from + group: subscribe
//	        as a log follower replaying from offset `from` (OffsetCursor
//	        means "resume from the group's persisted cursor"). Followers
//	        observe every message; plain CONSUME subscriptions remain
//	        competitive consumers.
//	PRODUCE+FlagDeliver+FlagOffset  topic + uint64 base + batch: a
//	        replay delivery. Message i of the batch has offset base+i —
//	        replay batches are contiguous because they come from the log.
//	ACK+FlagOffset  client→broker topic + uint64 offset: commit the
//	        subscription's consumer-group cursor — every offset below it
//	        has been processed downstream. Cumulative and durable.
//
// # Partitioned-topic extensions (FlagPart)
//
// Clustered brokers address topics as (name, partition). Every
// topic-bearing frame grows a partition-aware form gated by FlagPart:
// a `uint32 partition` field directly after the topic field, before
// anything else in the body. A frame without FlagPart addresses the
// classic unpartitioned topic (partition = NoPartition); the two
// namespaces never collide. Key→partition routing is client-side —
// FNV-1a over the message key modulo the partition count (see
// internal/cluster) — so every client implementation routes a key to
// the same partition and the wire only ever carries the resulting
// partition id.
//
// CONSUME+FlagOffset additionally honors FlagStrict: a strict replay
// subscription fails with a typed ERR (ECodeTruncated, detail = the
// oldest live offset) instead of silently clamping forward when
// retention has dropped the requested offset — which is how
// replication followers detect that they must resync rather than
// copy a log with a hole in it.
//
//	METADATA (TMeta) client→broker: empty body, ask for the cluster
//	        map. The reply (FlagReply) carries the answering node's id,
//	        the partition count and replication factor, the static node
//	        list (id + addr each) and the partitioned topic names the
//	        node currently knows — enough for a client to compute the
//	        full rendezvous partition map locally, and for replication
//	        followers to discover topics to follow. An unclustered
//	        broker answers with a zero partition count and no nodes.
//
// # Typed errors
//
// ERR bodies are structured: `uint16 code | uint64 detail | text`.
// Code 0 is a generic error (detail 0); ECodeTruncated carries the
// oldest live offset in detail, ECodeNotOwner the partition a PRODUCE
// was misrouted to. The text remains human-readable on every code.
//
// # Fail-closed decoding
//
// The decoder trusts nothing: frames above MaxFrame, topics above
// MaxTopic, batches above MaxBatch, counts that cannot fit the
// remaining body, truncated fields and trailing garbage are all hard
// errors. A Reader never over-reads past the declared frame length,
// so a poisoned frame cannot desynchronize the stream; callers treat
// any error as fatal for the connection.
package wire

import "errors"

// Frame types.
const (
	TPing    = 1
	TProduce = 2
	TConsume = 3
	TAck     = 4
	TCredit  = 5
	TErr     = 6
	TOffsets = 7
	TMeta    = 8
)

// Frame flags.
const (
	// FlagPong marks a PING reply.
	FlagPong = 1 << 0
	// FlagDeliver marks a broker→consumer PRODUCE (a delivery).
	FlagDeliver = 1 << 1
	// FlagEnd marks an ACK as a subscription's end-of-stream.
	FlagEnd = 1 << 2
	// FlagOffset marks a frame's durable-topic offset form: CONSUME
	// with a from-offset + group, DELIVER with a base offset, ACK as a
	// client→broker consumer-group cursor commit.
	FlagOffset = 1 << 3
	// FlagReply marks the broker's response to an OFFSETS or METADATA
	// query.
	FlagReply = 1 << 4
	// FlagPart marks a frame's partitioned form: a uint32 partition id
	// follows the topic field.
	FlagPart = 1 << 5
	// FlagStrict on CONSUME+FlagOffset makes the replay subscription
	// fail with a typed ERR instead of clamping when retention has
	// dropped the requested offset (the replication follower's form).
	FlagStrict = 1 << 6
)

// NoPartition is the partition id of a classic unpartitioned topic;
// encoders omit the partition field (and FlagPart) for it, and it is
// rejected as an explicit on-wire partition id.
const NoPartition = ^uint32(0)

// ERR frame codes. The code tells a client how to react; the text
// stays human-readable either way.
const (
	// ECodeGeneric is an uncategorized terminal error (detail 0).
	ECodeGeneric = 0
	// ECodeTruncated: a strict replay subscription asked for an offset
	// retention has dropped; detail carries the oldest live offset, so
	// a replication follower can resync from there.
	ECodeTruncated = 1
	// ECodeNotOwner: a partitioned frame reached a node that is not the
	// partition's owner; detail carries the partition id.
	ECodeNotOwner = 2
	// ECodeBadPartition: the partition id is outside the cluster's
	// partition count; detail carries the offending id.
	ECodeBadPartition = 3
)

// OffsetCursor is the CONSUME from-offset sentinel meaning "resume
// from the consumer group's persisted cursor" (falling back to the
// oldest retained offset when the group has none). It doubles as the
// "no cursor" value in an OFFSETS reply.
const OffsetCursor = ^uint64(0)

// Wire limits; exceeding any of them is a decode error.
const (
	// headerSize is the fixed prefix: length + type + flags.
	headerSize = 6
	// MaxFrame bounds the length field (type + flags + body).
	MaxFrame = 16 << 20
	// MaxTopic bounds the topic name length.
	MaxTopic = 1024
	// MaxGroup bounds the consumer-group name length.
	MaxGroup = 1024
	// MaxBatch bounds the message count of one PRODUCE frame.
	MaxBatch = 64 << 10
	// MaxNodes bounds the node list of a METADATA reply.
	MaxNodes = 1024
	// MaxMetaTopics bounds the topic list of a METADATA reply.
	MaxMetaTopics = 4096
	// pingBody is the fixed PING body size (the token).
	pingBody = 8
	// errHeader is the fixed ERR body prefix: code + detail.
	errHeader = 10
)

// Decode errors. Reader and the Parse functions return these (possibly
// wrapped); all of them are terminal for the connection.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrFrameTooSmall = errors.New("wire: frame shorter than type+flags")
	ErrTruncated     = errors.New("wire: body truncated")
	ErrTrailingBytes = errors.New("wire: trailing bytes after body")
	ErrTopicTooLong  = errors.New("wire: topic exceeds MaxTopic")
	ErrGroupTooLong  = errors.New("wire: group exceeds MaxGroup")
	ErrBatchTooLarge = errors.New("wire: batch exceeds MaxBatch")
	ErrBadPartition  = errors.New("wire: partition id is the NoPartition sentinel")
	ErrMetaTooLarge  = errors.New("wire: metadata exceeds MaxNodes/MaxMetaTopics")
	ErrWrongType     = errors.New("wire: frame type does not match parser")
)

// NodeMeta is one cluster member in a METADATA reply.
type NodeMeta struct {
	ID, Addr string
}

// MetaResp is a decoded METADATA reply: the static cluster shape plus
// the partitioned topics the answering node currently knows. An
// unclustered broker reports Partitions == 0 and no nodes.
type MetaResp struct {
	// NodeID identifies the answering node.
	NodeID string
	// Partitions is the cluster-wide partition count per topic;
	// Replication the number of nodes holding each partition (owner
	// plus followers).
	Partitions  uint32
	Replication uint32
	// Nodes is the static cluster member list.
	Nodes []NodeMeta
	// Topics lists the partitioned topic base names the node knows.
	Topics []string
}

// Frame is one decoded frame. Body aliases the Reader's internal
// buffer and is valid only until the next Read.
type Frame struct {
	Type  byte
	Flags byte
	Body  []byte
}
