// Package wire defines ffqd's framing: length-prefixed binary frames
// carrying batched produce/deliver payloads, subscriptions, cumulative
// acknowledgements, credit grants and pings.
//
// # Frame layout
//
// Every frame is
//
//	uint32  length   (big-endian; covers type + flags + body)
//	uint8   type     (TPing .. TErr)
//	uint8   flags
//	[]byte  body     (length - 2 bytes)
//
// Bodies that name a topic start with `uint16 len | topic bytes`.
// PRODUCE bodies are batch-aware: one frame carries `uint32 count`
// followed by count `uint32 len | payload` messages, so the framing
// cost amortizes across a batch exactly like the queue's EnqueueBatch.
//
// # Direction and semantics
//
//	PING    both ways    8-byte token; the peer echoes it with FlagPong.
//	PRODUCE client→broker topic + message batch. The broker acknowledges
//	        cumulatively per connection (ACK).
//	        broker→client the same frame with FlagDeliver set delivers a
//	        batch to a subscribed consumer.
//	CONSUME client→broker topic + initial credit: subscribe. The broker
//	        may deliver at most `credit` messages until CREDIT grants more.
//	ACK     broker→client topic + uint64 seq: the first seq messages
//	        produced on this connection for the topic have been accepted
//	        into the topic queue. With FlagEnd it is the subscription's
//	        end-of-stream marker (broker shutdown after drain).
//	CREDIT  client→broker topic + uint32 n: grant n more deliveries.
//	ERR     broker→client human-readable reason; the sender closes the
//	        connection after writing it.
//	OFFSETS client→broker topic + consumer group: ask for the topic's
//	        durable offset range. The broker replies with the same type
//	        and FlagReply set, carrying oldest/next/cursor.
//
// # Durable-topic extensions (FlagOffset)
//
// Durable topics assign every message a monotonic per-topic offset and
// persist batches to a write-ahead log (internal/wal). Three frames
// grow offset-aware forms, all gated by FlagOffset so the classic
// in-memory protocol is untouched:
//
//	CONSUME+FlagOffset  topic + credit + uint64 from + group: subscribe
//	        as a log follower replaying from offset `from` (OffsetCursor
//	        means "resume from the group's persisted cursor"). Followers
//	        observe every message; plain CONSUME subscriptions remain
//	        competitive consumers.
//	PRODUCE+FlagDeliver+FlagOffset  topic + uint64 base + batch: a
//	        replay delivery. Message i of the batch has offset base+i —
//	        replay batches are contiguous because they come from the log.
//	ACK+FlagOffset  client→broker topic + uint64 offset: commit the
//	        subscription's consumer-group cursor — every offset below it
//	        has been processed downstream. Cumulative and durable.
//
// # Fail-closed decoding
//
// The decoder trusts nothing: frames above MaxFrame, topics above
// MaxTopic, batches above MaxBatch, counts that cannot fit the
// remaining body, truncated fields and trailing garbage are all hard
// errors. A Reader never over-reads past the declared frame length,
// so a poisoned frame cannot desynchronize the stream; callers treat
// any error as fatal for the connection.
package wire

import "errors"

// Frame types.
const (
	TPing    = 1
	TProduce = 2
	TConsume = 3
	TAck     = 4
	TCredit  = 5
	TErr     = 6
	TOffsets = 7
)

// Frame flags.
const (
	// FlagPong marks a PING reply.
	FlagPong = 1 << 0
	// FlagDeliver marks a broker→consumer PRODUCE (a delivery).
	FlagDeliver = 1 << 1
	// FlagEnd marks an ACK as a subscription's end-of-stream.
	FlagEnd = 1 << 2
	// FlagOffset marks a frame's durable-topic offset form: CONSUME
	// with a from-offset + group, DELIVER with a base offset, ACK as a
	// client→broker consumer-group cursor commit.
	FlagOffset = 1 << 3
	// FlagReply marks the broker's response to an OFFSETS query.
	FlagReply = 1 << 4
)

// OffsetCursor is the CONSUME from-offset sentinel meaning "resume
// from the consumer group's persisted cursor" (falling back to the
// oldest retained offset when the group has none). It doubles as the
// "no cursor" value in an OFFSETS reply.
const OffsetCursor = ^uint64(0)

// Wire limits; exceeding any of them is a decode error.
const (
	// headerSize is the fixed prefix: length + type + flags.
	headerSize = 6
	// MaxFrame bounds the length field (type + flags + body).
	MaxFrame = 16 << 20
	// MaxTopic bounds the topic name length.
	MaxTopic = 1024
	// MaxGroup bounds the consumer-group name length.
	MaxGroup = 1024
	// MaxBatch bounds the message count of one PRODUCE frame.
	MaxBatch = 64 << 10
	// pingBody is the fixed PING body size (the token).
	pingBody = 8
)

// Decode errors. Reader and the Parse functions return these (possibly
// wrapped); all of them are terminal for the connection.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrFrameTooSmall = errors.New("wire: frame shorter than type+flags")
	ErrTruncated     = errors.New("wire: body truncated")
	ErrTrailingBytes = errors.New("wire: trailing bytes after body")
	ErrTopicTooLong  = errors.New("wire: topic exceeds MaxTopic")
	ErrGroupTooLong  = errors.New("wire: group exceeds MaxGroup")
	ErrBatchTooLarge = errors.New("wire: batch exceeds MaxBatch")
	ErrWrongType     = errors.New("wire: frame type does not match parser")
)

// Frame is one decoded frame. Body aliases the Reader's internal
// buffer and is valid only until the next Read.
type Frame struct {
	Type  byte
	Flags byte
	Body  []byte
}
