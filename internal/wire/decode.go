package wire

import (
	"encoding/binary"
	"io"
)

// Reader decodes frames from an io.Reader, reusing one internal
// buffer: at steady state a connection's read loop allocates nothing.
// The Body of a returned Frame aliases that buffer and is valid only
// until the next call to Next; callers that stage messages past the
// next read copy them out (see CopyMessages).
//
// A Reader is not safe for concurrent use.
type Reader struct {
	r   io.Reader
	hdr [headerSize]byte
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads exactly one frame. It never reads past the declared frame
// length, so decode errors do not desynchronize the stream (they are
// terminal for the connection anyway). io.EOF is returned only at a
// clean frame boundary; EOF mid-frame is io.ErrUnexpectedEOF.
func (r *Reader) Next() (Frame, error) {
	var f Frame
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return f, err // io.EOF here is a clean end of stream
	}
	n := binary.BigEndian.Uint32(r.hdr[:4])
	if n < 2 {
		return f, ErrFrameTooSmall
	}
	if n > MaxFrame {
		return f, ErrFrameTooLarge
	}
	body := int(n) - 2
	if cap(r.buf) < body {
		r.buf = make([]byte, body)
	}
	buf := r.buf[:body]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return f, err
	}
	f.Type = r.hdr[4]
	f.Flags = r.hdr[5]
	f.Body = buf
	return f, nil
}

// getTopic splits the leading `uint16 len | bytes` topic field off b.
func getTopic(b []byte) (topic, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxTopic {
		return nil, nil, ErrTopicTooLong
	}
	if len(b) < 2+n {
		return nil, nil, ErrTruncated
	}
	return b[2 : 2+n], b[2+n:], nil
}

// ParsePing returns the token of a PING frame.
func ParsePing(f Frame) (token uint64, err error) {
	if f.Type != TPing {
		return 0, ErrWrongType
	}
	if len(f.Body) < pingBody {
		return 0, ErrTruncated
	}
	if len(f.Body) > pingBody {
		return 0, ErrTrailingBytes
	}
	return binary.BigEndian.Uint64(f.Body), nil
}

// Batch is a validated message batch iterator over the wire's batch
// body encoding (`uint32 count` + count `uint32 len | payload`).
// ParseBatch walks the whole body up front, so Next never fails and
// never over-reads: after a nil error every message boundary is known
// to be in bounds and the body to have no trailing bytes. The WAL's
// record bodies use the same encoding and parse through the same path.
type Batch struct {
	// N is the number of messages Next will still yield.
	N    int
	rest []byte
}

// ParseBatch validates a batch body and returns its iterator. All
// yielded slices alias b.
func ParseBatch(b []byte) (Batch, error) {
	var p Batch
	if len(b) < 4 {
		return p, ErrTruncated
	}
	count := binary.BigEndian.Uint32(b)
	rest := b[4:]
	if count > MaxBatch {
		return p, ErrBatchTooLarge
	}
	// Each message costs at least its 4-byte length header, so a count
	// the remaining body cannot fit fails before the walk trusts it.
	if int64(count)*4 > int64(len(rest)) {
		return p, ErrTruncated
	}
	w := rest
	for i := uint32(0); i < count; i++ {
		if len(w) < 4 {
			return p, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(w))
		if n > len(w)-4 {
			return p, ErrTruncated
		}
		w = w[4+n:]
	}
	if len(w) != 0 {
		return p, ErrTrailingBytes
	}
	p.N = int(count)
	p.rest = rest
	return p, nil
}

// Next yields the next message payload (aliasing the parsed body) and
// reports whether one existed. It cannot fail: ParseBatch validated
// every boundary.
func (p *Batch) Next() ([]byte, bool) {
	if p.N == 0 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(p.rest))
	m := p.rest[4 : 4+n]
	p.rest = p.rest[4+n:]
	p.N--
	return m, true
}

// ProduceBody is a validated PRODUCE batch: the topic plus the batch
// iterator.
type ProduceBody struct {
	// Topic aliases the frame body.
	Topic []byte
	Batch
}

// ParseProduce validates a PRODUCE (or DELIVER) frame and returns its
// batch iterator. All returned slices alias the frame body.
func ParseProduce(f Frame) (ProduceBody, error) {
	var p ProduceBody
	if f.Type != TProduce {
		return p, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return p, err
	}
	b, err := ParseBatch(rest)
	if err != nil {
		return p, err
	}
	p.Topic = topic
	p.Batch = b
	return p, nil
}

// ParseDeliverOffsets validates a replay DELIVER frame
// (PRODUCE+FlagDeliver+FlagOffset) and returns the topic, the offset
// of the batch's first message, and the batch iterator (message i has
// offset base+i).
func ParseDeliverOffsets(f Frame) (topic []byte, base uint64, b Batch, err error) {
	if f.Type != TProduce || f.Flags&FlagOffset == 0 {
		return nil, 0, b, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, b, err
	}
	if len(rest) < 8 {
		return nil, 0, b, ErrTruncated
	}
	base = binary.BigEndian.Uint64(rest)
	b, err = ParseBatch(rest[8:])
	if err != nil {
		return nil, 0, b, err
	}
	return topic, base, b, nil
}

// CopyMessages drains p's remaining messages into freshly owned
// storage: one arena allocation holds every payload and one slice
// header array points into it, so staging a whole batch past the
// reader's buffer lifetime costs two allocations regardless of batch
// size.
func CopyMessages(p *Batch) [][]byte {
	total := 0
	w := p.rest
	for i := 0; i < p.N; i++ {
		n := int(binary.BigEndian.Uint32(w))
		total += n
		w = w[4+n:]
	}
	out := make([][]byte, 0, p.N)
	arena := make([]byte, total)
	off := 0
	for {
		m, ok := p.Next()
		if !ok {
			return out
		}
		end := off + copy(arena[off:], m)
		out = append(out, arena[off:end:end])
		off = end
	}
}

// getGroup splits the trailing `uint16 len | bytes` group field off b;
// unlike getTopic it must consume b entirely.
func getGroup(b []byte) (group []byte, err error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxGroup {
		return nil, ErrGroupTooLong
	}
	if len(b) < 2+n {
		return nil, ErrTruncated
	}
	if len(b) > 2+n {
		return nil, ErrTrailingBytes
	}
	return b[2 : 2+n], nil
}

// ParseConsumeFrom returns the fields of a durable CONSUME frame
// (FlagOffset set): topic, initial credit, from-offset (OffsetCursor =
// resume from the group cursor) and consumer group (possibly empty).
func ParseConsumeFrom(f Frame) (topic []byte, credit uint32, from uint64, group []byte, err error) {
	if f.Type != TConsume || f.Flags&FlagOffset == 0 {
		return nil, 0, 0, nil, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	if len(rest) < 12 {
		return nil, 0, 0, nil, ErrTruncated
	}
	credit = binary.BigEndian.Uint32(rest)
	from = binary.BigEndian.Uint64(rest[4:])
	group, err = getGroup(rest[12:])
	if err != nil {
		return nil, 0, 0, nil, err
	}
	return topic, credit, from, group, nil
}

// ParseOffsetsReq returns the topic and consumer group of an OFFSETS
// query.
func ParseOffsetsReq(f Frame) (topic, group []byte, err error) {
	if f.Type != TOffsets || f.Flags&FlagReply != 0 {
		return nil, nil, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, nil, err
	}
	group, err = getGroup(rest)
	if err != nil {
		return nil, nil, err
	}
	return topic, group, nil
}

// ParseOffsetsResp returns the fields of an OFFSETS reply: oldest
// retained offset, next offset to be assigned, and the queried group's
// cursor (OffsetCursor when absent).
func ParseOffsetsResp(f Frame) (topic []byte, oldest, next, cursor uint64, err error) {
	if f.Type != TOffsets || f.Flags&FlagReply == 0 {
		return nil, 0, 0, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if len(rest) < 24 {
		return nil, 0, 0, 0, ErrTruncated
	}
	if len(rest) > 24 {
		return nil, 0, 0, 0, ErrTrailingBytes
	}
	return topic, binary.BigEndian.Uint64(rest),
		binary.BigEndian.Uint64(rest[8:]),
		binary.BigEndian.Uint64(rest[16:]), nil
}

// ParseConsume returns the topic and initial credit of a CONSUME frame.
func ParseConsume(f Frame) (topic []byte, credit uint32, err error) {
	if f.Type != TConsume {
		return nil, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) < 4 {
		return nil, 0, ErrTruncated
	}
	if len(rest) > 4 {
		return nil, 0, ErrTrailingBytes
	}
	return topic, binary.BigEndian.Uint32(rest), nil
}

// ParseAck returns the topic and cumulative sequence of an ACK frame.
func ParseAck(f Frame) (topic []byte, seq uint64, err error) {
	if f.Type != TAck {
		return nil, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) < 8 {
		return nil, 0, ErrTruncated
	}
	if len(rest) > 8 {
		return nil, 0, ErrTrailingBytes
	}
	return topic, binary.BigEndian.Uint64(rest), nil
}

// ParseCredit returns the topic and grant of a CREDIT frame.
func ParseCredit(f Frame) (topic []byte, n uint32, err error) {
	if f.Type != TCredit {
		return nil, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) < 4 {
		return nil, 0, ErrTruncated
	}
	if len(rest) > 4 {
		return nil, 0, ErrTrailingBytes
	}
	return topic, binary.BigEndian.Uint32(rest), nil
}

// ParseErr returns the reason carried by an ERR frame.
func ParseErr(f Frame) (string, error) {
	if f.Type != TErr {
		return "", ErrWrongType
	}
	return string(f.Body), nil
}
