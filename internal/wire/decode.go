package wire

import (
	"encoding/binary"
	"io"
)

// Reader decodes frames from an io.Reader, reusing one internal
// buffer: at steady state a connection's read loop allocates nothing.
// The Body of a returned Frame aliases that buffer and is valid only
// until the next call to Next; callers that stage messages past the
// next read copy them out (see CopyMessages).
//
// A Reader is not safe for concurrent use.
type Reader struct {
	r   io.Reader
	hdr [headerSize]byte
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads exactly one frame. It never reads past the declared frame
// length, so decode errors do not desynchronize the stream (they are
// terminal for the connection anyway). io.EOF is returned only at a
// clean frame boundary; EOF mid-frame is io.ErrUnexpectedEOF.
func (r *Reader) Next() (Frame, error) {
	var f Frame
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return f, err // io.EOF here is a clean end of stream
	}
	n := binary.BigEndian.Uint32(r.hdr[:4])
	if n < 2 {
		return f, ErrFrameTooSmall
	}
	if n > MaxFrame {
		return f, ErrFrameTooLarge
	}
	body := int(n) - 2
	if cap(r.buf) < body {
		r.buf = make([]byte, body)
	}
	buf := r.buf[:body]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return f, err
	}
	f.Type = r.hdr[4]
	f.Flags = r.hdr[5]
	f.Body = buf
	return f, nil
}

// getTopic splits the leading `uint16 len | bytes` topic field off b.
func getTopic(b []byte) (topic, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxTopic {
		return nil, nil, ErrTopicTooLong
	}
	if len(b) < 2+n {
		return nil, nil, ErrTruncated
	}
	return b[2 : 2+n], b[2+n:], nil
}

// getPart splits the partition field off b when flags carries
// FlagPart; without it the frame addresses the unpartitioned topic
// (NoPartition) and b is untouched. An explicit on-wire NoPartition is
// rejected — it is the absence sentinel, never a valid id.
func getPart(flags byte, b []byte) (part uint32, rest []byte, err error) {
	if flags&FlagPart == 0 {
		return NoPartition, b, nil
	}
	if len(b) < 4 {
		return 0, nil, ErrTruncated
	}
	part = binary.BigEndian.Uint32(b)
	if part == NoPartition {
		return 0, nil, ErrBadPartition
	}
	return part, b[4:], nil
}

// getString splits a leading `uint16 len | bytes` metadata string off
// b, copying it out (metadata is cold path; the copy frees the frame
// buffer).
func getString(b []byte) (s string, rest []byte, err error) {
	if len(b) < 2 {
		return "", nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxTopic {
		return "", nil, ErrTopicTooLong
	}
	if len(b) < 2+n {
		return "", nil, ErrTruncated
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// ParsePing returns the token of a PING frame.
func ParsePing(f Frame) (token uint64, err error) {
	if f.Type != TPing {
		return 0, ErrWrongType
	}
	if len(f.Body) < pingBody {
		return 0, ErrTruncated
	}
	if len(f.Body) > pingBody {
		return 0, ErrTrailingBytes
	}
	return binary.BigEndian.Uint64(f.Body), nil
}

// Batch is a validated message batch iterator over the wire's batch
// body encoding (`uint32 count` + count `uint32 len | payload`).
// ParseBatch walks the whole body up front, so Next never fails and
// never over-reads: after a nil error every message boundary is known
// to be in bounds and the body to have no trailing bytes. The WAL's
// record bodies use the same encoding and parse through the same path.
type Batch struct {
	// N is the number of messages Next will still yield.
	N    int
	rest []byte
}

// ParseBatch validates a batch body and returns its iterator. All
// yielded slices alias b.
func ParseBatch(b []byte) (Batch, error) {
	var p Batch
	if len(b) < 4 {
		return p, ErrTruncated
	}
	count := binary.BigEndian.Uint32(b)
	rest := b[4:]
	if count > MaxBatch {
		return p, ErrBatchTooLarge
	}
	// Each message costs at least its 4-byte length header, so a count
	// the remaining body cannot fit fails before the walk trusts it.
	if int64(count)*4 > int64(len(rest)) {
		return p, ErrTruncated
	}
	w := rest
	for i := uint32(0); i < count; i++ {
		if len(w) < 4 {
			return p, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(w))
		if n > len(w)-4 {
			return p, ErrTruncated
		}
		w = w[4+n:]
	}
	if len(w) != 0 {
		return p, ErrTrailingBytes
	}
	p.N = int(count)
	p.rest = rest
	return p, nil
}

// Next yields the next message payload (aliasing the parsed body) and
// reports whether one existed. It cannot fail: ParseBatch validated
// every boundary.
func (p *Batch) Next() ([]byte, bool) {
	if p.N == 0 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint32(p.rest))
	m := p.rest[4 : 4+n]
	p.rest = p.rest[4+n:]
	p.N--
	return m, true
}

// ProduceBody is a validated PRODUCE batch: the topic and partition
// plus the batch iterator.
type ProduceBody struct {
	// Topic aliases the frame body.
	Topic []byte
	// Part is the addressed partition (NoPartition without FlagPart).
	Part uint32
	Batch
}

// ParseProduce validates a PRODUCE (or DELIVER) frame and returns its
// batch iterator. All returned slices alias the frame body.
func ParseProduce(f Frame) (ProduceBody, error) {
	var p ProduceBody
	if f.Type != TProduce {
		return p, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return p, err
	}
	part, rest, err := getPart(f.Flags, rest)
	if err != nil {
		return p, err
	}
	b, err := ParseBatch(rest)
	if err != nil {
		return p, err
	}
	p.Topic = topic
	p.Part = part
	p.Batch = b
	return p, nil
}

// ParseDeliverOffsets validates a replay DELIVER frame
// (PRODUCE+FlagDeliver+FlagOffset) and returns the topic, partition,
// the offset of the batch's first message, and the batch iterator
// (message i has offset base+i).
func ParseDeliverOffsets(f Frame) (topic []byte, part uint32, base uint64, b Batch, err error) {
	if f.Type != TProduce || f.Flags&FlagOffset == 0 {
		return nil, 0, 0, b, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, b, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, 0, b, err
	}
	if len(rest) < 8 {
		return nil, 0, 0, b, ErrTruncated
	}
	base = binary.BigEndian.Uint64(rest)
	b, err = ParseBatch(rest[8:])
	if err != nil {
		return nil, 0, 0, b, err
	}
	return topic, part, base, b, nil
}

// CopyMessages drains p's remaining messages into freshly owned
// storage: one arena allocation holds every payload and one slice
// header array points into it, so staging a whole batch past the
// reader's buffer lifetime costs two allocations regardless of batch
// size.
func CopyMessages(p *Batch) [][]byte {
	total := 0
	w := p.rest
	for i := 0; i < p.N; i++ {
		n := int(binary.BigEndian.Uint32(w))
		total += n
		w = w[4+n:]
	}
	out := make([][]byte, 0, p.N)
	arena := make([]byte, total)
	off := 0
	for {
		m, ok := p.Next()
		if !ok {
			return out
		}
		end := off + copy(arena[off:], m)
		out = append(out, arena[off:end:end])
		off = end
	}
}

// getGroup splits the trailing `uint16 len | bytes` group field off b;
// unlike getTopic it must consume b entirely.
func getGroup(b []byte) (group []byte, err error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxGroup {
		return nil, ErrGroupTooLong
	}
	if len(b) < 2+n {
		return nil, ErrTruncated
	}
	if len(b) > 2+n {
		return nil, ErrTrailingBytes
	}
	return b[2 : 2+n], nil
}

// ConsumeFromBody is a validated durable CONSUME frame (FlagOffset
// set): a log-follower subscription.
type ConsumeFromBody struct {
	// Topic and Group alias the frame body.
	Topic []byte
	// Part is the addressed partition (NoPartition without FlagPart).
	Part uint32
	// Credit is the initial delivery window.
	Credit uint32
	// From is the replay start offset; OffsetCursor means resume from
	// Group's persisted cursor.
	From  uint64
	Group []byte
	// Strict reports FlagStrict: fail with ECodeTruncated instead of
	// clamping when retention has dropped From.
	Strict bool
}

// ParseConsumeFrom returns the fields of a durable CONSUME frame
// (FlagOffset set). Topic and Group alias the frame body.
func ParseConsumeFrom(f Frame) (ConsumeFromBody, error) {
	var c ConsumeFromBody
	if f.Type != TConsume || f.Flags&FlagOffset == 0 {
		return c, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return c, err
	}
	part, rest, err := getPart(f.Flags, rest)
	if err != nil {
		return c, err
	}
	if len(rest) < 12 {
		return c, ErrTruncated
	}
	c.Topic = topic
	c.Part = part
	c.Credit = binary.BigEndian.Uint32(rest)
	c.From = binary.BigEndian.Uint64(rest[4:])
	c.Strict = f.Flags&FlagStrict != 0
	c.Group, err = getGroup(rest[12:])
	if err != nil {
		return ConsumeFromBody{}, err
	}
	return c, nil
}

// ParseOffsetsReq returns the topic, partition and consumer group of
// an OFFSETS query.
func ParseOffsetsReq(f Frame) (topic []byte, part uint32, group []byte, err error) {
	if f.Type != TOffsets || f.Flags&FlagReply != 0 {
		return nil, 0, nil, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, nil, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, nil, err
	}
	group, err = getGroup(rest)
	if err != nil {
		return nil, 0, nil, err
	}
	return topic, part, group, nil
}

// ParseOffsetsResp returns the fields of an OFFSETS reply: oldest
// retained offset, next offset to be assigned, and the queried group's
// cursor (OffsetCursor when absent).
func ParseOffsetsResp(f Frame) (topic []byte, part uint32, oldest, next, cursor uint64, err error) {
	if f.Type != TOffsets || f.Flags&FlagReply == 0 {
		return nil, 0, 0, 0, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, 0, 0, 0, err
	}
	if len(rest) < 24 {
		return nil, 0, 0, 0, 0, ErrTruncated
	}
	if len(rest) > 24 {
		return nil, 0, 0, 0, 0, ErrTrailingBytes
	}
	return topic, part, binary.BigEndian.Uint64(rest),
		binary.BigEndian.Uint64(rest[8:]),
		binary.BigEndian.Uint64(rest[16:]), nil
}

// ParseConsume returns the topic, partition and initial credit of a
// CONSUME frame.
func ParseConsume(f Frame) (topic []byte, part uint32, credit uint32, err error) {
	if f.Type != TConsume {
		return nil, 0, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(rest) < 4 {
		return nil, 0, 0, ErrTruncated
	}
	if len(rest) > 4 {
		return nil, 0, 0, ErrTrailingBytes
	}
	return topic, part, binary.BigEndian.Uint32(rest), nil
}

// ParseAck returns the topic, partition and cumulative sequence of an
// ACK frame.
func ParseAck(f Frame) (topic []byte, part uint32, seq uint64, err error) {
	if f.Type != TAck {
		return nil, 0, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(rest) < 8 {
		return nil, 0, 0, ErrTruncated
	}
	if len(rest) > 8 {
		return nil, 0, 0, ErrTrailingBytes
	}
	return topic, part, binary.BigEndian.Uint64(rest), nil
}

// ParseCredit returns the topic, partition and grant of a CREDIT
// frame.
func ParseCredit(f Frame) (topic []byte, part uint32, n uint32, err error) {
	if f.Type != TCredit {
		return nil, 0, 0, ErrWrongType
	}
	topic, rest, err := getTopic(f.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	part, rest, err = getPart(f.Flags, rest)
	if err != nil {
		return nil, 0, 0, err
	}
	if len(rest) < 4 {
		return nil, 0, 0, ErrTruncated
	}
	if len(rest) > 4 {
		return nil, 0, 0, ErrTrailingBytes
	}
	return topic, part, binary.BigEndian.Uint32(rest), nil
}

// ParseErr returns the human-readable reason carried by an ERR frame,
// discarding the code and detail (see ParseErrCode).
func ParseErr(f Frame) (string, error) {
	_, _, msg, err := ParseErrCode(f)
	return msg, err
}

// ParseErrCode returns the structured fields of an ERR frame: the
// code, its detail (meaning depends on the code) and the
// human-readable text.
func ParseErrCode(f Frame) (code uint16, detail uint64, msg string, err error) {
	if f.Type != TErr {
		return 0, 0, "", ErrWrongType
	}
	if len(f.Body) < errHeader {
		return 0, 0, "", ErrTruncated
	}
	return binary.BigEndian.Uint16(f.Body),
		binary.BigEndian.Uint64(f.Body[2:]),
		string(f.Body[errHeader:]), nil
}

// ParseMetaReq validates a METADATA query (empty body).
func ParseMetaReq(f Frame) error {
	if f.Type != TMeta || f.Flags&FlagReply != 0 {
		return ErrWrongType
	}
	if len(f.Body) != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// ParseMetaResp decodes a METADATA reply. Everything is copied out of
// the frame body — metadata is cold path and outlives the read buffer.
func ParseMetaResp(f Frame) (MetaResp, error) {
	var m MetaResp
	if f.Type != TMeta || f.Flags&FlagReply == 0 {
		return m, ErrWrongType
	}
	b := f.Body
	var err error
	m.NodeID, b, err = getString(b)
	if err != nil {
		return MetaResp{}, err
	}
	if len(b) < 10 {
		return MetaResp{}, ErrTruncated
	}
	m.Partitions = binary.BigEndian.Uint32(b)
	m.Replication = binary.BigEndian.Uint32(b[4:])
	nn := int(binary.BigEndian.Uint16(b[8:]))
	b = b[10:]
	if nn > MaxNodes {
		return MetaResp{}, ErrMetaTooLarge
	}
	// Each node costs at least its two length headers, so a count the
	// remaining body cannot fit fails before any allocation trusts it.
	if nn*4 > len(b) {
		return MetaResp{}, ErrTruncated
	}
	for i := 0; i < nn; i++ {
		var n NodeMeta
		n.ID, b, err = getString(b)
		if err != nil {
			return MetaResp{}, err
		}
		n.Addr, b, err = getString(b)
		if err != nil {
			return MetaResp{}, err
		}
		m.Nodes = append(m.Nodes, n)
	}
	if len(b) < 2 {
		return MetaResp{}, ErrTruncated
	}
	tn := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if tn > MaxMetaTopics {
		return MetaResp{}, ErrMetaTooLarge
	}
	if tn*2 > len(b) {
		return MetaResp{}, ErrTruncated
	}
	for i := 0; i < tn; i++ {
		var t string
		t, b, err = getString(b)
		if err != nil {
			return MetaResp{}, err
		}
		m.Topics = append(m.Topics, t)
	}
	if len(b) != 0 {
		return MetaResp{}, ErrTrailingBytes
	}
	return m, nil
}
