package wire

import "encoding/binary"

// Buffer accumulates encoded frames for one writer flush. Frames are
// appended back to back so a pipelining client (or the broker's
// delivery path) pays one conn.Write per flush, not per frame. The
// encoders are allocation-free once the buffer has grown to its peak
// flush size; growth itself lives in ensure, off the marked paths.
//
// A Buffer is not safe for concurrent use.
type Buffer struct {
	b []byte
}

// Bytes returns the frames accumulated since the last Reset.
func (b *Buffer) Bytes() []byte { return b.b }

// Len returns the accumulated byte count.
func (b *Buffer) Len() int { return len(b.b) }

// Reset drops the accumulated frames, keeping capacity for reuse.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// ensure extends the buffer by n bytes and returns the region to
// write them into. Amortized doubling keeps the encoders above it
// allocation-free at steady state.
func (b *Buffer) ensure(n int) []byte {
	l := len(b.b)
	if cap(b.b)-l < n {
		c := 2 * cap(b.b)
		if c < l+n {
			c = l + n
		}
		if c < 256 {
			c = 256
		}
		nb := make([]byte, l, c)
		copy(nb, b.b)
		b.b = nb
	}
	b.b = b.b[:l+n]
	return b.b[l : l+n]
}

// putHeader writes the fixed frame prefix; body is the length field
// value minus the type and flags bytes.
//
//ffq:hotpath
func putHeader(dst []byte, typ, flags byte, body int) {
	binary.BigEndian.PutUint32(dst, uint32(body+2))
	dst[4] = typ
	dst[5] = flags
}

// putTopic writes the `uint16 len | bytes` topic field and returns its
// encoded size.
//
//ffq:hotpath
func putTopic(dst, topic []byte) int {
	binary.BigEndian.PutUint16(dst, uint16(len(topic)))
	return 2 + copy(dst[2:], topic)
}

// checkTopic panics on a topic the wire cannot carry; topics are
// caller-controlled configuration, so an oversized one is a bug, not
// input.
//
//ffq:hotpath
func checkTopic(topic []byte) {
	if len(topic) > MaxTopic {
		panic("wire: topic exceeds MaxTopic")
	}
}

// partSize returns the encoded size of the partition field: 0 for
// NoPartition (field and FlagPart omitted), 4 otherwise.
//
//ffq:hotpath
func partSize(part uint32) int {
	if part == NoPartition {
		return 0
	}
	return 4
}

// partFlag returns FlagPart for an explicit partition id, 0 for
// NoPartition.
//
//ffq:hotpath
func partFlag(part uint32) byte {
	if part == NoPartition {
		return 0
	}
	return FlagPart
}

// putPart writes the partition field (nothing for NoPartition) and
// returns its encoded size.
//
//ffq:hotpath
func putPart(dst []byte, part uint32) int {
	if part == NoPartition {
		return 0
	}
	binary.BigEndian.PutUint32(dst, part)
	return 4
}

// putString writes a `uint16 len | bytes` metadata string and returns
// its encoded size. Panics above MaxTopic — metadata strings are
// operator configuration, so an oversized one is a bug, not input.
func putString(dst []byte, s string) int {
	if len(s) > MaxTopic {
		panic("wire: metadata string exceeds MaxTopic")
	}
	binary.BigEndian.PutUint16(dst, uint16(len(s)))
	return 2 + copy(dst[2:], s)
}

// PutPing appends a PING frame carrying token; pong marks it a reply.
//
//ffq:hotpath
func (b *Buffer) PutPing(token uint64, pong bool) {
	var flags byte
	if pong {
		flags = FlagPong
	}
	dst := b.ensure(headerSize + pingBody)
	putHeader(dst, TPing, flags, pingBody)
	binary.BigEndian.PutUint64(dst[headerSize:], token)
}

// BatchSize returns the encoded size of a message batch — the uint32
// count plus each message's uint32 length prefix and payload. It is
// the sizing half of EncodeBatch.
//
//ffq:hotpath
func BatchSize(msgs [][]byte) int {
	n := 4
	for _, m := range msgs {
		n += 4 + len(m)
	}
	return n
}

// EncodeBatch writes the batch body encoding (`uint32 count` followed
// by count `uint32 len | payload` messages) into dst, which must have
// room for BatchSize(msgs) bytes, and returns the bytes written. This
// is the exact payload layout of a PRODUCE frame after the topic
// field; the WAL reuses it as its record body so log records and wire
// frames share one codec. Panics on a batch above MaxBatch (a caller
// bug, not input).
//
//ffq:hotpath
func EncodeBatch(dst []byte, msgs [][]byte) int {
	if len(msgs) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	binary.BigEndian.PutUint32(dst, uint32(len(msgs)))
	o := 4
	for _, m := range msgs {
		binary.BigEndian.PutUint32(dst[o:], uint32(len(m)))
		o += 4
		o += copy(dst[o:], m)
	}
	return o
}

// PutProduce appends one batch-carrying PRODUCE frame addressing
// (topic, part); part NoPartition encodes the classic unpartitioned
// form. The broker's delivery path reuses it with FlagDeliver. Panics
// if the batch or the topic exceeds the wire limits (caller bugs, not
// input).
//
//ffq:hotpath
func (b *Buffer) PutProduce(flags byte, topic []byte, part uint32, msgs [][]byte) {
	checkTopic(topic)
	flags |= partFlag(part)
	body := 2 + len(topic) + partSize(part) + BatchSize(msgs)
	if body+2 > MaxFrame {
		panic("wire: frame exceeds MaxFrame")
	}
	dst := b.ensure(headerSize + body)
	putHeader(dst, TProduce, flags, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	EncodeBatch(dst[o:], msgs)
}

// PutDeliverOffsets appends one replay DELIVER frame: a PRODUCE with
// FlagDeliver|FlagOffset whose batch is a contiguous run of log
// messages starting at offset base (message i has offset base+i).
// Panics on wire-limit violations, like PutProduce.
//
//ffq:hotpath
func (b *Buffer) PutDeliverOffsets(topic []byte, part uint32, base uint64, msgs [][]byte) {
	checkTopic(topic)
	body := 2 + len(topic) + partSize(part) + 8 + BatchSize(msgs)
	if body+2 > MaxFrame {
		panic("wire: frame exceeds MaxFrame")
	}
	dst := b.ensure(headerSize + body)
	putHeader(dst, TProduce, FlagDeliver|FlagOffset|partFlag(part), body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint64(dst[o:], base)
	o += 8
	EncodeBatch(dst[o:], msgs)
}

// PutConsume appends a CONSUME (subscribe) frame with the initial
// credit window.
//
//ffq:hotpath
func (b *Buffer) PutConsume(topic []byte, part uint32, credit uint32) {
	checkTopic(topic)
	body := 2 + len(topic) + partSize(part) + 4
	dst := b.ensure(headerSize + body)
	putHeader(dst, TConsume, partFlag(part), body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint32(dst[o:], credit)
}

// PutConsumeFrom appends the durable CONSUME form: subscribe as a log
// follower replaying from offset `from` (OffsetCursor = resume from
// the group's persisted cursor), committing cursors under the given
// consumer group (may be empty: no cursor persistence). strict sets
// FlagStrict: fail with ECodeTruncated instead of clamping when
// retention has dropped `from` — the replication follower's form.
func (b *Buffer) PutConsumeFrom(topic []byte, part uint32, credit uint32, from uint64, group []byte, strict bool) {
	checkTopic(topic)
	if len(group) > MaxGroup {
		panic("wire: group exceeds MaxGroup")
	}
	flags := byte(FlagOffset) | partFlag(part)
	if strict {
		flags |= FlagStrict
	}
	body := 2 + len(topic) + partSize(part) + 4 + 8 + 2 + len(group)
	dst := b.ensure(headerSize + body)
	putHeader(dst, TConsume, flags, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint32(dst[o:], credit)
	o += 4
	binary.BigEndian.PutUint64(dst[o:], from)
	o += 8
	binary.BigEndian.PutUint16(dst[o:], uint16(len(group)))
	copy(dst[o+2:], group)
}

// PutOffsetsReq appends an OFFSETS query for a topic's durable offset
// range; group (may be empty) selects whose cursor the reply carries.
func (b *Buffer) PutOffsetsReq(topic []byte, part uint32, group []byte) {
	checkTopic(topic)
	if len(group) > MaxGroup {
		panic("wire: group exceeds MaxGroup")
	}
	body := 2 + len(topic) + partSize(part) + 2 + len(group)
	dst := b.ensure(headerSize + body)
	putHeader(dst, TOffsets, partFlag(part), body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint16(dst[o:], uint16(len(group)))
	copy(dst[o+2:], group)
}

// PutOffsetsResp appends the broker's OFFSETS reply: oldest retained
// offset, next offset to be assigned, and the queried group's cursor
// (OffsetCursor when the group has none or none was named).
func (b *Buffer) PutOffsetsResp(topic []byte, part uint32, oldest, next, cursor uint64) {
	checkTopic(topic)
	body := 2 + len(topic) + partSize(part) + 24
	dst := b.ensure(headerSize + body)
	putHeader(dst, TOffsets, FlagReply|partFlag(part), body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint64(dst[o:], oldest)
	binary.BigEndian.PutUint64(dst[o+8:], next)
	binary.BigEndian.PutUint64(dst[o+16:], cursor)
}

// PutAck appends an ACK frame: the first seq messages produced on this
// connection for (topic, part) are accepted. FlagEnd turns it into the
// subscription end-of-stream marker. With FlagOffset it is instead the
// client→broker consumer-group cursor commit (seq = first unprocessed
// offset).
//
//ffq:hotpath
func (b *Buffer) PutAck(flags byte, topic []byte, part uint32, seq uint64) {
	checkTopic(topic)
	flags |= partFlag(part)
	body := 2 + len(topic) + partSize(part) + 8
	dst := b.ensure(headerSize + body)
	putHeader(dst, TAck, flags, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint64(dst[o:], seq)
}

// PutCredit appends a CREDIT frame granting n more deliveries.
//
//ffq:hotpath
func (b *Buffer) PutCredit(topic []byte, part uint32, n uint32) {
	checkTopic(topic)
	body := 2 + len(topic) + partSize(part) + 4
	dst := b.ensure(headerSize + body)
	putHeader(dst, TCredit, partFlag(part), body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	o += putPart(dst[o:], part)
	binary.BigEndian.PutUint32(dst[o:], n)
}

// PutErr appends a generic ERR frame (ECodeGeneric, no detail). Cold
// path by definition (the sender closes the connection after it), so
// it is not hotpath-marked.
func (b *Buffer) PutErr(msg string) {
	b.PutErrCode(ECodeGeneric, 0, msg)
}

// PutErrCode appends a typed ERR frame: `uint16 code | uint64 detail |
// text`. The detail's meaning depends on the code (ECodeTruncated: the
// oldest live offset; ECodeNotOwner/ECodeBadPartition: the partition).
func (b *Buffer) PutErrCode(code uint16, detail uint64, msg string) {
	if len(msg) > MaxFrame-headerSize-errHeader {
		msg = msg[:MaxFrame-headerSize-errHeader]
	}
	body := errHeader + len(msg)
	dst := b.ensure(headerSize + body)
	putHeader(dst, TErr, 0, body)
	binary.BigEndian.PutUint16(dst[headerSize:], code)
	binary.BigEndian.PutUint64(dst[headerSize+2:], detail)
	copy(dst[headerSize+errHeader:], msg)
}

// PutMetaReq appends a METADATA query (empty body).
func (b *Buffer) PutMetaReq() {
	dst := b.ensure(headerSize)
	putHeader(dst, TMeta, 0, 0)
}

// PutMetaResp appends the broker's METADATA reply. Panics when the
// node or topic list exceeds the wire limits — cluster shape is
// operator configuration, so oversize is a bug, not input.
func (b *Buffer) PutMetaResp(m MetaResp) {
	if len(m.Nodes) > MaxNodes || len(m.Topics) > MaxMetaTopics {
		panic("wire: metadata exceeds MaxNodes/MaxMetaTopics")
	}
	body := 2 + len(m.NodeID) + 4 + 4 + 2 + 2
	for _, n := range m.Nodes {
		body += 2 + len(n.ID) + 2 + len(n.Addr)
	}
	for _, t := range m.Topics {
		body += 2 + len(t)
	}
	if body+2 > MaxFrame {
		panic("wire: frame exceeds MaxFrame")
	}
	dst := b.ensure(headerSize + body)
	putHeader(dst, TMeta, FlagReply, body)
	o := headerSize
	o += putString(dst[o:], m.NodeID)
	binary.BigEndian.PutUint32(dst[o:], m.Partitions)
	binary.BigEndian.PutUint32(dst[o+4:], m.Replication)
	o += 8
	binary.BigEndian.PutUint16(dst[o:], uint16(len(m.Nodes)))
	o += 2
	for _, n := range m.Nodes {
		o += putString(dst[o:], n.ID)
		o += putString(dst[o:], n.Addr)
	}
	binary.BigEndian.PutUint16(dst[o:], uint16(len(m.Topics)))
	o += 2
	for _, t := range m.Topics {
		o += putString(dst[o:], t)
	}
}
