package wire

import "encoding/binary"

// Buffer accumulates encoded frames for one writer flush. Frames are
// appended back to back so a pipelining client (or the broker's
// delivery path) pays one conn.Write per flush, not per frame. The
// encoders are allocation-free once the buffer has grown to its peak
// flush size; growth itself lives in ensure, off the marked paths.
//
// A Buffer is not safe for concurrent use.
type Buffer struct {
	b []byte
}

// Bytes returns the frames accumulated since the last Reset.
func (b *Buffer) Bytes() []byte { return b.b }

// Len returns the accumulated byte count.
func (b *Buffer) Len() int { return len(b.b) }

// Reset drops the accumulated frames, keeping capacity for reuse.
func (b *Buffer) Reset() { b.b = b.b[:0] }

// ensure extends the buffer by n bytes and returns the region to
// write them into. Amortized doubling keeps the encoders above it
// allocation-free at steady state.
func (b *Buffer) ensure(n int) []byte {
	l := len(b.b)
	if cap(b.b)-l < n {
		c := 2 * cap(b.b)
		if c < l+n {
			c = l + n
		}
		if c < 256 {
			c = 256
		}
		nb := make([]byte, l, c)
		copy(nb, b.b)
		b.b = nb
	}
	b.b = b.b[:l+n]
	return b.b[l : l+n]
}

// putHeader writes the fixed frame prefix; body is the length field
// value minus the type and flags bytes.
//
//ffq:hotpath
func putHeader(dst []byte, typ, flags byte, body int) {
	binary.BigEndian.PutUint32(dst, uint32(body+2))
	dst[4] = typ
	dst[5] = flags
}

// putTopic writes the `uint16 len | bytes` topic field and returns its
// encoded size.
//
//ffq:hotpath
func putTopic(dst, topic []byte) int {
	binary.BigEndian.PutUint16(dst, uint16(len(topic)))
	return 2 + copy(dst[2:], topic)
}

// checkTopic panics on a topic the wire cannot carry; topics are
// caller-controlled configuration, so an oversized one is a bug, not
// input.
//
//ffq:hotpath
func checkTopic(topic []byte) {
	if len(topic) > MaxTopic {
		panic("wire: topic exceeds MaxTopic")
	}
}

// PutPing appends a PING frame carrying token; pong marks it a reply.
//
//ffq:hotpath
func (b *Buffer) PutPing(token uint64, pong bool) {
	var flags byte
	if pong {
		flags = FlagPong
	}
	dst := b.ensure(headerSize + pingBody)
	putHeader(dst, TPing, flags, pingBody)
	binary.BigEndian.PutUint64(dst[headerSize:], token)
}

// PutProduce appends one batch-carrying PRODUCE frame. The broker's
// delivery path reuses it with FlagDeliver. Panics if the batch or the
// topic exceeds the wire limits (caller bugs, not input).
//
//ffq:hotpath
func (b *Buffer) PutProduce(flags byte, topic []byte, msgs [][]byte) {
	checkTopic(topic)
	if len(msgs) > MaxBatch {
		panic("wire: batch exceeds MaxBatch")
	}
	body := 2 + len(topic) + 4
	for _, m := range msgs {
		body += 4 + len(m)
	}
	if body+2 > MaxFrame {
		panic("wire: frame exceeds MaxFrame")
	}
	dst := b.ensure(headerSize + body)
	putHeader(dst, TProduce, flags, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	binary.BigEndian.PutUint32(dst[o:], uint32(len(msgs)))
	o += 4
	for _, m := range msgs {
		binary.BigEndian.PutUint32(dst[o:], uint32(len(m)))
		o += 4
		o += copy(dst[o:], m)
	}
}

// PutConsume appends a CONSUME (subscribe) frame with the initial
// credit window.
//
//ffq:hotpath
func (b *Buffer) PutConsume(topic []byte, credit uint32) {
	checkTopic(topic)
	body := 2 + len(topic) + 4
	dst := b.ensure(headerSize + body)
	putHeader(dst, TConsume, 0, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	binary.BigEndian.PutUint32(dst[o:], credit)
}

// PutAck appends an ACK frame: the first seq messages produced on this
// connection for topic are accepted. FlagEnd turns it into the
// subscription end-of-stream marker.
//
//ffq:hotpath
func (b *Buffer) PutAck(flags byte, topic []byte, seq uint64) {
	checkTopic(topic)
	body := 2 + len(topic) + 8
	dst := b.ensure(headerSize + body)
	putHeader(dst, TAck, flags, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	binary.BigEndian.PutUint64(dst[o:], seq)
}

// PutCredit appends a CREDIT frame granting n more deliveries.
//
//ffq:hotpath
func (b *Buffer) PutCredit(topic []byte, n uint32) {
	checkTopic(topic)
	body := 2 + len(topic) + 4
	dst := b.ensure(headerSize + body)
	putHeader(dst, TCredit, 0, body)
	o := headerSize
	o += putTopic(dst[o:], topic)
	binary.BigEndian.PutUint32(dst[o:], n)
}

// PutErr appends an ERR frame. Cold path by definition (the sender
// closes the connection after it), so it is not hotpath-marked.
func (b *Buffer) PutErr(msg string) {
	if len(msg) > MaxFrame-headerSize {
		msg = msg[:MaxFrame-headerSize]
	}
	dst := b.ensure(headerSize + len(msg))
	putHeader(dst, TErr, 0, len(msg))
	copy(dst[headerSize:], msg)
}
