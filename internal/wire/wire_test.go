package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRoundTrip encodes one frame of every type into a single flush
// and decodes them back in order.
func TestRoundTrip(t *testing.T) {
	topic := []byte("orders")
	msgs := [][]byte{[]byte("a"), []byte(""), []byte("hello world"), bytes.Repeat([]byte("x"), 300)}

	var b Buffer
	b.PutPing(0xdeadbeefcafe, false)
	b.PutProduce(0, topic, NoPartition, msgs)
	b.PutProduce(FlagDeliver, topic, NoPartition, msgs[:1])
	b.PutConsume(topic, NoPartition, 128)
	b.PutAck(0, topic, NoPartition, 42)
	b.PutAck(FlagEnd, topic, NoPartition, 99)
	b.PutCredit(topic, NoPartition, 64)
	b.PutErr("boom")

	r := NewReader(bytes.NewReader(b.Bytes()))

	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok, err := ParsePing(f); err != nil || tok != 0xdeadbeefcafe || f.Flags&FlagPong != 0 {
		t.Fatalf("ping: %x %v flags=%x", tok, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Topic) != "orders" || p.Part != NoPartition || p.N != len(msgs) {
		t.Fatalf("produce: topic=%q part=%d n=%d", p.Topic, p.Part, p.N)
	}
	for i := range msgs {
		m, ok := p.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}
	if _, ok := p.Next(); ok {
		t.Fatal("iterator yielded past the batch")
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagDeliver == 0 {
		t.Fatal("deliver flag lost")
	}
	if p, err = ParseProduce(f); err != nil || p.N != 1 {
		t.Fatalf("deliver: %v n=%d", err, p.N)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, part, credit, err := ParseConsume(f); err != nil || string(topic) != "orders" || part != NoPartition || credit != 128 {
		t.Fatalf("consume: %q %d %d %v", topic, part, credit, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, part, seq, err := ParseAck(f); err != nil || string(topic) != "orders" || part != NoPartition || seq != 42 || f.Flags&FlagEnd != 0 {
		t.Fatalf("ack: %q %d %d %v flags=%x", topic, part, seq, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, seq, err := ParseAck(f); err != nil || seq != 99 || f.Flags&FlagEnd == 0 {
		t.Fatalf("end ack: %d %v flags=%x", seq, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, part, n, err := ParseCredit(f); err != nil || string(topic) != "orders" || part != NoPartition || n != 64 {
		t.Fatalf("credit: %q %d %d %v", topic, part, n, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := ParseErr(f); err != nil || msg != "boom" {
		t.Fatalf("err frame: %q %v", msg, err)
	}

	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// TestPartitionedRoundTrip covers the FlagPart forms of every
// topic-bearing frame: the partition id travels, the flag is set, and
// unpartitioned parsers of the same frames report NoPartition.
func TestPartitionedRoundTrip(t *testing.T) {
	topic := []byte("orders")
	group := []byte("billing")
	msgs := [][]byte{[]byte("k1"), []byte("k2")}
	const part = uint32(5)

	var b Buffer
	b.PutProduce(0, topic, part, msgs)
	b.PutConsume(topic, part, 32)
	b.PutConsumeFrom(topic, part, 16, 88, group, true)
	b.PutDeliverOffsets(topic, part, 700, msgs)
	b.PutAck(FlagOffset, topic, part, 9)
	b.PutCredit(topic, part, 11)
	b.PutOffsetsReq(topic, part, group)
	b.PutOffsetsResp(topic, part, 1, 2, 3)

	r := NewReader(bytes.NewReader(b.Bytes()))

	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagPart == 0 {
		t.Fatalf("produce flags = %x, FlagPart missing", f.Flags)
	}
	p, err := ParseProduce(f)
	if err != nil || string(p.Topic) != "orders" || p.Part != part || p.N != 2 {
		t.Fatalf("produce: topic=%q part=%d n=%d %v", p.Topic, p.Part, p.N, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, pt, credit, err := ParseConsume(f); err != nil || string(tp) != "orders" || pt != part || credit != 32 {
		t.Fatalf("consume: %q %d %d %v", tp, pt, credit, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ParseConsumeFrom(f)
	if err != nil || string(cf.Topic) != "orders" || cf.Part != part ||
		cf.Credit != 16 || cf.From != 88 || string(cf.Group) != "billing" || !cf.Strict {
		t.Fatalf("consume-from: %+v %v", cf, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	tp, pt, base, batch, err := ParseDeliverOffsets(f)
	if err != nil || string(tp) != "orders" || pt != part || base != 700 || batch.N != 2 {
		t.Fatalf("deliver-offsets: %q %d %d n=%d %v", tp, pt, base, batch.N, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, pt, seq, err := ParseAck(f); err != nil || string(tp) != "orders" || pt != part || seq != 9 {
		t.Fatalf("ack: %q %d %d %v", tp, pt, seq, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, pt, n, err := ParseCredit(f); err != nil || string(tp) != "orders" || pt != part || n != 11 {
		t.Fatalf("credit: %q %d %d %v", tp, pt, n, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, pt, g, err := ParseOffsetsReq(f); err != nil || string(tp) != "orders" || pt != part || string(g) != "billing" {
		t.Fatalf("offsets req: %q %d %q %v", tp, pt, g, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, pt, oldest, next, cursor, err := ParseOffsetsResp(f); err != nil ||
		string(tp) != "orders" || pt != part || oldest != 1 || next != 2 || cursor != 3 {
		t.Fatalf("offsets resp: %q %d %d %d %d %v", tp, pt, oldest, next, cursor, err)
	}
}

// TestPartitionFailClosed checks the partition field's rejection
// paths: a truncated field and the explicit NoPartition sentinel on
// the wire.
func TestPartitionFailClosed(t *testing.T) {
	t.Run("explicit-sentinel", func(t *testing.T) {
		// topic "t" + a 4-byte partition field carrying NoPartition.
		body := []byte{0, 1, 't', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 16}
		if _, _, _, err := ParseConsume(Frame{Type: TConsume, Flags: FlagPart, Body: body}); !errors.Is(err, ErrBadPartition) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-part", func(t *testing.T) {
		body := []byte{0, 1, 't', 0, 0}
		if _, _, _, err := ParseConsume(Frame{Type: TConsume, Flags: FlagPart, Body: body}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("flagless-body-mismatch", func(t *testing.T) {
		// A partitioned CONSUME body parsed without FlagPart must fail:
		// the 4 partition bytes become trailing garbage after the credit.
		var b Buffer
		b.PutConsume([]byte("t"), 3, 16)
		f, err := NewReader(bytes.NewReader(b.Bytes())).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ParseConsume(Frame{Type: TConsume, Flags: 0, Body: f.Body}); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestMetaRoundTrip covers the METADATA query and reply codec.
func TestMetaRoundTrip(t *testing.T) {
	want := MetaResp{
		NodeID:      "n1",
		Partitions:  8,
		Replication: 2,
		Nodes: []NodeMeta{
			{ID: "n1", Addr: "127.0.0.1:7077"},
			{ID: "n2", Addr: "127.0.0.1:7078"},
			{ID: "n3", Addr: "127.0.0.1:7079"},
		},
		Topics: []string{"orders", "audit"},
	}
	var b Buffer
	b.PutMetaReq()
	b.PutMetaResp(want)
	b.PutMetaResp(MetaResp{NodeID: "solo"}) // unclustered: no nodes, no topics

	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseMetaReq(f); err != nil {
		t.Fatalf("meta req: %v", err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMetaResp(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeID != want.NodeID || got.Partitions != want.Partitions || got.Replication != want.Replication ||
		len(got.Nodes) != len(want.Nodes) || len(got.Topics) != len(want.Topics) {
		t.Fatalf("meta resp: %+v", got)
	}
	for i, n := range want.Nodes {
		if got.Nodes[i] != n {
			t.Fatalf("node %d: %+v want %+v", i, got.Nodes[i], n)
		}
	}
	for i, tp := range want.Topics {
		if got.Topics[i] != tp {
			t.Fatalf("topic %d: %q want %q", i, got.Topics[i], tp)
		}
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ParseMetaResp(f); err != nil || got.NodeID != "solo" || got.Partitions != 0 || len(got.Nodes) != 0 {
		t.Fatalf("unclustered meta: %+v %v", got, err)
	}
}

// TestMetaFailClosed feeds the METADATA parser truncated and lying
// bodies.
func TestMetaFailClosed(t *testing.T) {
	var b Buffer
	b.PutMetaResp(MetaResp{NodeID: "n1", Partitions: 4, Replication: 2,
		Nodes: []NodeMeta{{ID: "n1", Addr: "a"}}, Topics: []string{"t"}})
	f, err := NewReader(bytes.NewReader(b.Bytes())).Next()
	if err != nil {
		t.Fatal(err)
	}
	valid := f.Body

	t.Run("req-nonempty", func(t *testing.T) {
		if err := ParseMetaReq(Frame{Type: TMeta, Body: []byte{0}}); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("trailing", func(t *testing.T) {
		body := append(append([]byte(nil), valid...), 0xff)
		if _, err := ParseMetaResp(Frame{Type: TMeta, Flags: FlagReply, Body: body}); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-everywhere", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := ParseMetaResp(Frame{Type: TMeta, Flags: FlagReply, Body: valid[:cut]}); err == nil {
				t.Fatalf("cut at %d parsed", cut)
			}
		}
	})
	t.Run("node-count-lies", func(t *testing.T) {
		// NodeID "" + partitions/replication + a node count the body
		// cannot fit.
		body := make([]byte, 2+4+4+2)
		binary.BigEndian.PutUint16(body[10:], 500)
		if _, err := ParseMetaResp(Frame{Type: TMeta, Flags: FlagReply, Body: body}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("node-count-over-limit", func(t *testing.T) {
		body := make([]byte, 2+4+4+2+4*(MaxNodes+1))
		binary.BigEndian.PutUint16(body[10:], MaxNodes+1)
		if _, err := ParseMetaResp(Frame{Type: TMeta, Flags: FlagReply, Body: body}); !errors.Is(err, ErrMetaTooLarge) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestErrCodeRoundTrip covers the typed ERR body: code + detail +
// text, and the lenient ParseErr view over it.
func TestErrCodeRoundTrip(t *testing.T) {
	var b Buffer
	b.PutErrCode(ECodeTruncated, 4096, "offset 100 truncated")
	b.PutErrCode(ECodeNotOwner, 3, "partition 3 owned by n2")
	b.PutErr("plain")

	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if code, detail, msg, err := ParseErrCode(f); err != nil || code != ECodeTruncated || detail != 4096 || msg != "offset 100 truncated" {
		t.Fatalf("err code: %d %d %q %v", code, detail, msg, err)
	}
	if msg, err := ParseErr(f); err != nil || msg != "offset 100 truncated" {
		t.Fatalf("lenient view: %q %v", msg, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if code, detail, _, err := ParseErrCode(f); err != nil || code != ECodeNotOwner || detail != 3 {
		t.Fatalf("not-owner: %d %d %v", code, detail, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if code, detail, msg, err := ParseErrCode(f); err != nil || code != ECodeGeneric || detail != 0 || msg != "plain" {
		t.Fatalf("generic: %d %d %q %v", code, detail, msg, err)
	}

	// A body shorter than the code+detail prefix fails closed.
	if _, _, _, err := ParseErrCode(Frame{Type: TErr, Body: make([]byte, errHeader-1)}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short err body: %v", err)
	}
}

// TestReaderFailClosed feeds the reader streams it must reject without
// panicking or over-reading.
func TestReaderFailClosed(t *testing.T) {
	frame := func(body []byte, typ, flags byte) []byte {
		out := make([]byte, headerSize+len(body))
		binary.BigEndian.PutUint32(out, uint32(len(body)+2))
		out[4], out[5] = typ, flags
		copy(out[headerSize:], body)
		return out
	}

	t.Run("length-too-small", func(t *testing.T) {
		raw := frame(nil, TPing, 0)
		binary.BigEndian.PutUint32(raw, 1)
		if _, err := NewReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameTooSmall) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("length-too-large", func(t *testing.T) {
		raw := frame(nil, TPing, 0)
		binary.BigEndian.PutUint32(raw, MaxFrame+1)
		if _, err := NewReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader([]byte{0, 0})).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-body", func(t *testing.T) {
		raw := frame([]byte{1, 2, 3, 4, 5, 6, 7, 8}, TPing, 0)
		if _, err := NewReader(bytes.NewReader(raw[:len(raw)-3])).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("ping-trailing", func(t *testing.T) {
		f := Frame{Type: TPing, Body: make([]byte, 9)}
		if _, err := ParsePing(f); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("topic-over-limit", func(t *testing.T) {
		body := make([]byte, 2+MaxTopic+1)
		binary.BigEndian.PutUint16(body, MaxTopic+1)
		if _, _, _, err := ParseConsume(Frame{Type: TConsume, Body: body}); !errors.Is(err, ErrTopicTooLong) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-count-lies", func(t *testing.T) {
		// Claims 1000 messages but carries bytes for none.
		body := make([]byte, 2+1+4)
		binary.BigEndian.PutUint16(body, 1)
		body[2] = 't'
		binary.BigEndian.PutUint32(body[3:], 1000)
		if _, err := ParseProduce(Frame{Type: TProduce, Body: body}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-batch-over-limit", func(t *testing.T) {
		body := make([]byte, 2+4+4*(MaxBatch+1))
		binary.BigEndian.PutUint32(body[2:], MaxBatch+1)
		if _, err := ParseProduce(Frame{Type: TProduce, Body: body}); !errors.Is(err, ErrBatchTooLarge) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-msg-overruns", func(t *testing.T) {
		var b Buffer
		b.PutProduce(0, []byte("t"), NoPartition, [][]byte{[]byte("abc")})
		raw := b.Bytes()
		// Inflate the message length field past the body end.
		binary.BigEndian.PutUint32(raw[headerSize+2+1+4:], 1<<20)
		f, err := NewReader(bytes.NewReader(raw)).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProduce(f); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-trailing", func(t *testing.T) {
		var b Buffer
		b.PutProduce(0, []byte("t"), NoPartition, [][]byte{[]byte("abc")})
		raw := frame(append(b.Bytes()[headerSize:], 0xff), TProduce, 0)
		f, err := NewReader(bytes.NewReader(raw)).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProduce(f); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("wrong-type", func(t *testing.T) {
		f := Frame{Type: TCredit, Body: make([]byte, 8)}
		if _, err := ParsePing(f); !errors.Is(err, ErrWrongType) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestCopyMessages checks that copied batches survive the reader's
// buffer being clobbered by the next frame.
func TestCopyMessages(t *testing.T) {
	var b Buffer
	b.PutProduce(0, []byte("t"), NoPartition, [][]byte{[]byte("first"), []byte("second")})
	b.PutProduce(0, []byte("t"), NoPartition, [][]byte{bytes.Repeat([]byte("z"), 64)})

	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProduce(f)
	if err != nil {
		t.Fatal(err)
	}
	got := CopyMessages(&p.Batch)
	if _, err := r.Next(); err != nil { // clobbers the shared buffer
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("copies corrupted: %q", got)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("CopyMessages left the iterator unconsumed")
	}
}

// TestEncodersAllocationFree is the runtime counterpart of the
// //ffq:hotpath markers: a warmed Buffer must encode without
// allocating, in both the unpartitioned and partitioned forms.
func TestEncodersAllocationFree(t *testing.T) {
	topic := []byte("orders")
	msgs := [][]byte{bytes.Repeat([]byte("m"), 100), bytes.Repeat([]byte("n"), 100)}
	var b Buffer
	b.PutProduce(0, topic, NoPartition, msgs) // warm the buffer
	b.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		b.PutPing(1, true)
		b.PutProduce(0, topic, NoPartition, msgs)
		b.PutProduce(0, topic, 7, msgs)
		b.PutConsume(topic, NoPartition, 8)
		b.PutAck(0, topic, 7, 3)
		b.PutCredit(topic, 7, 4)
		b.PutDeliverOffsets(topic, 7, 100, msgs)
	})
	if allocs != 0 {
		t.Fatalf("warmed encoders allocated %.1f times per run", allocs)
	}
}

// TestEncoderPanics verifies the caller-bug guards.
func TestEncoderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("%s did not panic", name)
			} else if !strings.HasPrefix(r.(string), "wire:") {
				t.Fatalf("%s panicked with %v", name, r)
			}
		}()
		fn()
	}
	var b Buffer
	long := make([]byte, MaxTopic+1)
	mustPanic("oversized topic", func() { b.PutCredit(long, NoPartition, 1) })
	mustPanic("oversized batch", func() { b.PutProduce(0, []byte("t"), NoPartition, make([][]byte, MaxBatch+1)) })
	mustPanic("oversized frame", func() {
		b.PutProduce(0, []byte("t"), NoPartition, [][]byte{make([]byte, MaxFrame)})
	})
	mustPanic("oversized node list", func() {
		b.PutMetaResp(MetaResp{Nodes: make([]NodeMeta, MaxNodes+1)})
	})
	mustPanic("oversized meta string", func() {
		b.PutMetaResp(MetaResp{NodeID: string(long)})
	})
}

// TestOffsetFramesRoundTrip covers the durable-topic frame forms:
// CONSUME-from, replay DELIVER with a base offset, the OFFSETS query
// and its reply, and the cursor-commit ACK.
func TestOffsetFramesRoundTrip(t *testing.T) {
	topic := []byte("orders")
	group := []byte("billing")
	msgs := [][]byte{[]byte("a"), []byte(""), bytes.Repeat([]byte("y"), 200)}

	var b Buffer
	b.PutConsumeFrom(topic, NoPartition, 64, 1234, group, false)
	b.PutConsumeFrom(topic, NoPartition, 8, OffsetCursor, nil, false)
	b.PutDeliverOffsets(topic, NoPartition, 900, msgs)
	b.PutOffsetsReq(topic, NoPartition, group)
	b.PutOffsetsResp(topic, NoPartition, 10, 5000, 4242)
	b.PutAck(FlagOffset, topic, NoPartition, 777)

	r := NewReader(bytes.NewReader(b.Bytes()))

	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ParseConsumeFrom(f)
	if err != nil || string(cf.Topic) != "orders" || cf.Part != NoPartition ||
		cf.Credit != 64 || cf.From != 1234 || string(cf.Group) != "billing" || cf.Strict {
		t.Fatalf("consume-from: %+v %v", cf, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if cf, err := ParseConsumeFrom(f); err != nil || cf.Credit != 8 || cf.From != OffsetCursor || len(cf.Group) != 0 {
		t.Fatalf("consume-from cursor: %+v %v", cf, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagDeliver == 0 || f.Flags&FlagOffset == 0 {
		t.Fatalf("deliver flags = %x", f.Flags)
	}
	tp, part, base, batch, err := ParseDeliverOffsets(f)
	if err != nil || string(tp) != "orders" || part != NoPartition || base != 900 || batch.N != len(msgs) {
		t.Fatalf("deliver-offsets: %q %d %d n=%d %v", tp, part, base, batch.N, err)
	}
	for i := range msgs {
		m, ok := batch.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, part, g, err := ParseOffsetsReq(f); err != nil || string(tp) != "orders" || part != NoPartition || string(g) != "billing" {
		t.Fatalf("offsets req: %q %d %q %v", tp, part, g, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, part, oldest, next, cursor, err := ParseOffsetsResp(f); err != nil ||
		string(tp) != "orders" || part != NoPartition || oldest != 10 || next != 5000 || cursor != 4242 {
		t.Fatalf("offsets resp: %q %d %d %d %d %v", tp, part, oldest, next, cursor, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, _, seq, err := ParseAck(f); err != nil || string(tp) != "orders" || seq != 777 || f.Flags&FlagOffset == 0 {
		t.Fatalf("cursor ack: %q %d %v flags=%x", tp, seq, err, f.Flags)
	}
}

// TestBatchCodecRoundTrip exercises the standalone batch body codec
// the WAL shares with PRODUCE frames.
func TestBatchCodecRoundTrip(t *testing.T) {
	msgs := [][]byte{[]byte("one"), nil, bytes.Repeat([]byte("q"), 100)}
	buf := make([]byte, BatchSize(msgs))
	if n := EncodeBatch(buf, msgs); n != len(buf) {
		t.Fatalf("EncodeBatch wrote %d of %d", n, len(buf))
	}
	b, err := ParseBatch(buf)
	if err != nil || b.N != len(msgs) {
		t.Fatalf("ParseBatch: n=%d %v", b.N, err)
	}
	for i := range msgs {
		m, ok := b.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}
	// Trailing garbage after a valid batch must fail closed.
	if _, err := ParseBatch(append(append([]byte(nil), buf...), 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: %v", err)
	}
	// A truncated last payload must fail closed.
	if _, err := ParseBatch(buf[:len(buf)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
}

// TestParseConsumeFromErrors checks fail-closed paths of the durable
// CONSUME form.
func TestParseConsumeFromErrors(t *testing.T) {
	var b Buffer
	b.PutConsumeFrom([]byte("t"), NoPartition, 1, 2, []byte("g"), false)
	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong flag: a classic CONSUME parser must reject the durable form
	// and vice versa.
	classic := Frame{Type: TConsume, Flags: 0, Body: f.Body}
	if _, err := ParseConsumeFrom(classic); !errors.Is(err, ErrWrongType) {
		t.Fatalf("flagless parse: %v", err)
	}
	if _, _, _, err := ParseConsume(f); err == nil {
		t.Fatal("classic parser accepted durable body")
	}
	// Truncated group field.
	trunc := Frame{Type: TConsume, Flags: FlagOffset, Body: f.Body[:len(f.Body)-1]}
	if _, err := ParseConsumeFrom(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated group: %v", err)
	}
}
