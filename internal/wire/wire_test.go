package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestRoundTrip encodes one frame of every type into a single flush
// and decodes them back in order.
func TestRoundTrip(t *testing.T) {
	topic := []byte("orders")
	msgs := [][]byte{[]byte("a"), []byte(""), []byte("hello world"), bytes.Repeat([]byte("x"), 300)}

	var b Buffer
	b.PutPing(0xdeadbeefcafe, false)
	b.PutProduce(0, topic, msgs)
	b.PutProduce(FlagDeliver, topic, msgs[:1])
	b.PutConsume(topic, 128)
	b.PutAck(0, topic, 42)
	b.PutAck(FlagEnd, topic, 99)
	b.PutCredit(topic, 64)
	b.PutErr("boom")

	r := NewReader(bytes.NewReader(b.Bytes()))

	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok, err := ParsePing(f); err != nil || tok != 0xdeadbeefcafe || f.Flags&FlagPong != 0 {
		t.Fatalf("ping: %x %v flags=%x", tok, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProduce(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Topic) != "orders" || p.N != len(msgs) {
		t.Fatalf("produce: topic=%q n=%d", p.Topic, p.N)
	}
	for i := range msgs {
		m, ok := p.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}
	if _, ok := p.Next(); ok {
		t.Fatal("iterator yielded past the batch")
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagDeliver == 0 {
		t.Fatal("deliver flag lost")
	}
	if p, err = ParseProduce(f); err != nil || p.N != 1 {
		t.Fatalf("deliver: %v n=%d", err, p.N)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, credit, err := ParseConsume(f); err != nil || string(topic) != "orders" || credit != 128 {
		t.Fatalf("consume: %q %d %v", topic, credit, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, seq, err := ParseAck(f); err != nil || string(topic) != "orders" || seq != 42 || f.Flags&FlagEnd != 0 {
		t.Fatalf("ack: %q %d %v flags=%x", topic, seq, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, seq, err := ParseAck(f); err != nil || seq != 99 || f.Flags&FlagEnd == 0 {
		t.Fatalf("end ack: %d %v flags=%x", seq, err, f.Flags)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if topic, n, err := ParseCredit(f); err != nil || string(topic) != "orders" || n != 64 {
		t.Fatalf("credit: %q %d %v", topic, n, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := ParseErr(f); err != nil || msg != "boom" {
		t.Fatalf("err frame: %q %v", msg, err)
	}

	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

// TestReaderFailClosed feeds the reader streams it must reject without
// panicking or over-reading.
func TestReaderFailClosed(t *testing.T) {
	frame := func(body []byte, typ, flags byte) []byte {
		out := make([]byte, headerSize+len(body))
		binary.BigEndian.PutUint32(out, uint32(len(body)+2))
		out[4], out[5] = typ, flags
		copy(out[headerSize:], body)
		return out
	}

	t.Run("length-too-small", func(t *testing.T) {
		raw := frame(nil, TPing, 0)
		binary.BigEndian.PutUint32(raw, 1)
		if _, err := NewReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameTooSmall) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("length-too-large", func(t *testing.T) {
		raw := frame(nil, TPing, 0)
		binary.BigEndian.PutUint32(raw, MaxFrame+1)
		if _, err := NewReader(bytes.NewReader(raw)).Next(); !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader([]byte{0, 0})).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated-body", func(t *testing.T) {
		raw := frame([]byte{1, 2, 3, 4, 5, 6, 7, 8}, TPing, 0)
		if _, err := NewReader(bytes.NewReader(raw[:len(raw)-3])).Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("ping-trailing", func(t *testing.T) {
		f := Frame{Type: TPing, Body: make([]byte, 9)}
		if _, err := ParsePing(f); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("topic-over-limit", func(t *testing.T) {
		body := make([]byte, 2+MaxTopic+1)
		binary.BigEndian.PutUint16(body, MaxTopic+1)
		if _, _, err := ParseConsume(Frame{Type: TConsume, Body: body}); !errors.Is(err, ErrTopicTooLong) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-count-lies", func(t *testing.T) {
		// Claims 1000 messages but carries bytes for none.
		body := make([]byte, 2+1+4)
		binary.BigEndian.PutUint16(body, 1)
		body[2] = 't'
		binary.BigEndian.PutUint32(body[3:], 1000)
		if _, err := ParseProduce(Frame{Type: TProduce, Body: body}); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-batch-over-limit", func(t *testing.T) {
		body := make([]byte, 2+4+4*(MaxBatch+1))
		binary.BigEndian.PutUint32(body[2:], MaxBatch+1)
		if _, err := ParseProduce(Frame{Type: TProduce, Body: body}); !errors.Is(err, ErrBatchTooLarge) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-msg-overruns", func(t *testing.T) {
		var b Buffer
		b.PutProduce(0, []byte("t"), [][]byte{[]byte("abc")})
		raw := b.Bytes()
		// Inflate the message length field past the body end.
		binary.BigEndian.PutUint32(raw[headerSize+2+1+4:], 1<<20)
		f, err := NewReader(bytes.NewReader(raw)).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProduce(f); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("produce-trailing", func(t *testing.T) {
		var b Buffer
		b.PutProduce(0, []byte("t"), [][]byte{[]byte("abc")})
		raw := frame(append(b.Bytes()[headerSize:], 0xff), TProduce, 0)
		f, err := NewReader(bytes.NewReader(raw)).Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseProduce(f); !errors.Is(err, ErrTrailingBytes) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("wrong-type", func(t *testing.T) {
		f := Frame{Type: TCredit, Body: make([]byte, 8)}
		if _, err := ParsePing(f); !errors.Is(err, ErrWrongType) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestCopyMessages checks that copied batches survive the reader's
// buffer being clobbered by the next frame.
func TestCopyMessages(t *testing.T) {
	var b Buffer
	b.PutProduce(0, []byte("t"), [][]byte{[]byte("first"), []byte("second")})
	b.PutProduce(0, []byte("t"), [][]byte{bytes.Repeat([]byte("z"), 64)})

	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParseProduce(f)
	if err != nil {
		t.Fatal(err)
	}
	got := CopyMessages(&p.Batch)
	if _, err := r.Next(); err != nil { // clobbers the shared buffer
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("copies corrupted: %q", got)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("CopyMessages left the iterator unconsumed")
	}
}

// TestEncodersAllocationFree is the runtime counterpart of the
// //ffq:hotpath markers: a warmed Buffer must encode without
// allocating.
func TestEncodersAllocationFree(t *testing.T) {
	topic := []byte("orders")
	msgs := [][]byte{bytes.Repeat([]byte("m"), 100), bytes.Repeat([]byte("n"), 100)}
	var b Buffer
	b.PutProduce(0, topic, msgs) // warm the buffer
	b.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		b.PutPing(1, true)
		b.PutProduce(0, topic, msgs)
		b.PutConsume(topic, 8)
		b.PutAck(0, topic, 3)
		b.PutCredit(topic, 4)
	})
	if allocs != 0 {
		t.Fatalf("warmed encoders allocated %.1f times per run", allocs)
	}
}

// TestEncoderPanics verifies the caller-bug guards.
func TestEncoderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("%s did not panic", name)
			} else if !strings.HasPrefix(r.(string), "wire:") {
				t.Fatalf("%s panicked with %v", name, r)
			}
		}()
		fn()
	}
	var b Buffer
	long := make([]byte, MaxTopic+1)
	mustPanic("oversized topic", func() { b.PutCredit(long, 1) })
	mustPanic("oversized batch", func() { b.PutProduce(0, []byte("t"), make([][]byte, MaxBatch+1)) })
	mustPanic("oversized frame", func() {
		b.PutProduce(0, []byte("t"), [][]byte{make([]byte, MaxFrame)})
	})
}

// TestOffsetFramesRoundTrip covers the durable-topic frame forms:
// CONSUME-from, replay DELIVER with a base offset, the OFFSETS query
// and its reply, and the cursor-commit ACK.
func TestOffsetFramesRoundTrip(t *testing.T) {
	topic := []byte("orders")
	group := []byte("billing")
	msgs := [][]byte{[]byte("a"), []byte(""), bytes.Repeat([]byte("y"), 200)}

	var b Buffer
	b.PutConsumeFrom(topic, 64, 1234, group)
	b.PutConsumeFrom(topic, 8, OffsetCursor, nil)
	b.PutDeliverOffsets(topic, 900, msgs)
	b.PutOffsetsReq(topic, group)
	b.PutOffsetsResp(topic, 10, 5000, 4242)
	b.PutAck(FlagOffset, topic, 777)

	r := NewReader(bytes.NewReader(b.Bytes()))

	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	tp, credit, from, g, err := ParseConsumeFrom(f)
	if err != nil || string(tp) != "orders" || credit != 64 || from != 1234 || string(g) != "billing" {
		t.Fatalf("consume-from: %q %d %d %q %v", tp, credit, from, g, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, credit, from, g, err := ParseConsumeFrom(f); err != nil || credit != 8 || from != OffsetCursor || len(g) != 0 {
		t.Fatalf("consume-from cursor: %d %d %q %v", credit, from, g, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Flags&FlagDeliver == 0 || f.Flags&FlagOffset == 0 {
		t.Fatalf("deliver flags = %x", f.Flags)
	}
	tp, base, batch, err := ParseDeliverOffsets(f)
	if err != nil || string(tp) != "orders" || base != 900 || batch.N != len(msgs) {
		t.Fatalf("deliver-offsets: %q %d n=%d %v", tp, base, batch.N, err)
	}
	for i := range msgs {
		m, ok := batch.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, g, err := ParseOffsetsReq(f); err != nil || string(tp) != "orders" || string(g) != "billing" {
		t.Fatalf("offsets req: %q %q %v", tp, g, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, oldest, next, cursor, err := ParseOffsetsResp(f); err != nil ||
		string(tp) != "orders" || oldest != 10 || next != 5000 || cursor != 4242 {
		t.Fatalf("offsets resp: %q %d %d %d %v", tp, oldest, next, cursor, err)
	}

	f, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tp, seq, err := ParseAck(f); err != nil || string(tp) != "orders" || seq != 777 || f.Flags&FlagOffset == 0 {
		t.Fatalf("cursor ack: %q %d %v flags=%x", tp, seq, err, f.Flags)
	}
}

// TestBatchCodecRoundTrip exercises the standalone batch body codec
// the WAL shares with PRODUCE frames.
func TestBatchCodecRoundTrip(t *testing.T) {
	msgs := [][]byte{[]byte("one"), nil, bytes.Repeat([]byte("q"), 100)}
	buf := make([]byte, BatchSize(msgs))
	if n := EncodeBatch(buf, msgs); n != len(buf) {
		t.Fatalf("EncodeBatch wrote %d of %d", n, len(buf))
	}
	b, err := ParseBatch(buf)
	if err != nil || b.N != len(msgs) {
		t.Fatalf("ParseBatch: n=%d %v", b.N, err)
	}
	for i := range msgs {
		m, ok := b.Next()
		if !ok || !bytes.Equal(m, msgs[i]) {
			t.Fatalf("msg %d: %q ok=%v", i, m, ok)
		}
	}
	// Trailing garbage after a valid batch must fail closed.
	if _, err := ParseBatch(append(append([]byte(nil), buf...), 0)); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: %v", err)
	}
	// A truncated last payload must fail closed.
	if _, err := ParseBatch(buf[:len(buf)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
}

// TestParseConsumeFromErrors checks fail-closed paths of the durable
// CONSUME form.
func TestParseConsumeFromErrors(t *testing.T) {
	var b Buffer
	b.PutConsumeFrom([]byte("t"), 1, 2, []byte("g"))
	r := NewReader(bytes.NewReader(b.Bytes()))
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong flag: a classic CONSUME parser must reject the durable form
	// and vice versa.
	classic := Frame{Type: TConsume, Flags: 0, Body: f.Body}
	if _, _, _, _, err := ParseConsumeFrom(classic); !errors.Is(err, ErrWrongType) {
		t.Fatalf("flagless parse: %v", err)
	}
	if _, _, err := ParseConsume(f); err == nil {
		t.Fatal("classic parser accepted durable body")
	}
	// Truncated group field.
	trunc := Frame{Type: TConsume, Flags: FlagOffset, Body: f.Body[:len(f.Body)-1]}
	if _, _, _, _, err := ParseConsumeFrom(trunc); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated group: %v", err)
	}
}
