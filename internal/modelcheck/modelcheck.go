// Package modelcheck exhaustively explores every interleaving of a
// small FFQ^s (Algorithm 1) configuration at shared-memory-access
// granularity — a bounded model checker for the algorithm itself,
// independent of the Go implementation.
//
// The producer and each consumer are encoded as explicit state
// machines whose transitions perform exactly one access to shared
// state (a cell's rank/gap/data, or the head counter); thread-private
// state (the tail counter, loop locals) piggybacks on adjacent steps,
// which is sound because no other thread can observe it. A depth-first
// search over all schedules, de-duplicated on full global state,
// visits every reachable interleaving; spin loops terminate the search
// naturally because a re-read that changes nothing reproduces an
// already-visited state.
//
// Checked properties:
//
//   - Safety at every state: counters within bounds, cells well-formed.
//   - No stuck states: every non-terminal state has a transition that
//     changes it (the paper's progress claims, Propositions 1-2, at
//     this configuration size).
//   - At every terminal state: every enqueued value is delivered
//     exactly once, and each consumer's deliveries are in increasing
//     production order (FIFO per observer, the order property the
//     single producer induces).
//
// Configurations are tiny (2-4 cells, 2-3 consumers, 3-6 items) but
// they exercise every line of Algorithm 1 including wrap-around and
// gap creation; the state spaces run to a few hundred thousand states.
package modelcheck

import (
	"fmt"
)

// Config sizes the explored system.
type Config struct {
	// Cells is the queue capacity N (power of two not required here;
	// the model uses real modulo).
	Cells int
	// Items is how many values the producer enqueues (values 1..Items).
	Items int
	// Consumers is the number of concurrent dequeuers.
	Consumers int
	// Takes[i] is how many items consumer i must dequeue; the sum must
	// equal Items.
	Takes []int
	// MaxStates aborts runaway explorations (0 = 5,000,000).
	MaxStates int
	// MaxGaps bounds how many ranks the producer may skip in one run
	// (0 = 4). Without a bound the producer can skip forever while the
	// scheduler starves the consumers — the exact regime the paper's
	// "always some empty slot" assumption (footnote 2) excludes — so
	// schedules exceeding the bound are pruned as assumption
	// violations. This makes the exploration a bounded check under the
	// paper's environment assumption, not an unbounded proof.
	MaxGaps int
	// Mutation optionally injects one of the bugs the paper warns
	// about, to validate that this checker (and the paper's arguments)
	// actually catch them.
	Mutation Mutation
	// CheckLiveness additionally verifies that every reachable state
	// can still reach a terminal state — the model-level counterpart
	// of the paper's progress claims (Propositions 1-2). Costs the
	// memory of the full transition graph.
	CheckLiveness bool
}

// Mutation selects an injected algorithm bug.
type Mutation uint8

const (
	// MutationNone explores the correct Algorithm 1.
	MutationNone Mutation = iota
	// MutationNoRecheck drops the "cell.rank != rank" re-check of
	// Algorithm 1 line 29. The paper explains why it is needed: the
	// producer may publish the expected element between the line-25
	// check and the gap check, and a consumer that skips anyway loses
	// the element.
	MutationNoRecheck
	// MutationRankBeforeData makes the producer publish the rank
	// before writing the data (the ordering footnote 3 enforces with
	// barriers): a consumer can then read stale data.
	MutationRankBeforeData
)

// Result summarizes an exploration.
type Result struct {
	// States is the number of distinct global states visited.
	States int
	// Terminals is the number of distinct terminal states reached.
	Terminals int
	// MaxGapsSeen is the largest number of skipped ranks in any run.
	MaxGapsSeen int
}

// producer program counters.
const (
	pIdle = iota // decide next item / finish
	pReadRank
	pWriteGap
	pWriteData
	pWriteRank
	pDone
)

// consumer program counters.
const (
	cIdle    = iota // decide next take / finish
	cAcquire        // FAA on head
	cReadRank
	cReadData
	cClearRank
	cReadGap
	cRecheckRank
	cDone
)

const freeRank = -1

// state is the full global state. It must be comparable for the
// visited set, hence fixed-size arrays bounded by the limits below.
const (
	maxCells     = 4
	maxConsumers = 3
	maxItems     = 7
)

type cellState struct {
	rank int8
	gap  int8
	data int8
}

type consumerState struct {
	pc    int8
	rank  int8 // acquired rank
	r     int8 // last rank read
	g     int8 // last gap read
	taken int8 // items delivered so far
	// recv records delivered values in order (bounded by maxItems).
	recv [maxItems]int8
}

type state struct {
	cells [maxCells]cellState
	head  int8
	tail  int8
	// producer
	ppc   int8
	pitem int8 // next value to enqueue (1-based)
	pr    int8 // last rank read
	gaps  int8 // skipped ranks so far (for reporting)
	cons  [maxConsumers]consumerState
}

// Explore runs the exhaustive search. It returns an error describing
// the first property violation found, if any.
func Explore(cfg Config) (Result, error) {
	if cfg.Cells < 1 || cfg.Cells > maxCells {
		return Result{}, fmt.Errorf("modelcheck: cells must be in [1,%d]", maxCells)
	}
	if cfg.Items < 1 || cfg.Items > maxItems-1 {
		return Result{}, fmt.Errorf("modelcheck: items must be in [1,%d]", maxItems-1)
	}
	if cfg.Consumers < 1 || cfg.Consumers > maxConsumers {
		return Result{}, fmt.Errorf("modelcheck: consumers must be in [1,%d]", maxConsumers)
	}
	if len(cfg.Takes) != cfg.Consumers {
		return Result{}, fmt.Errorf("modelcheck: need %d take counts", cfg.Consumers)
	}
	sum := 0
	for _, t := range cfg.Takes {
		sum += t
	}
	if sum != cfg.Items {
		return Result{}, fmt.Errorf("modelcheck: takes sum to %d, want %d", sum, cfg.Items)
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 5_000_000
	}
	if cfg.MaxGaps == 0 {
		cfg.MaxGaps = 4
	}

	var init state
	for i := 0; i < cfg.Cells; i++ {
		init.cells[i] = cellState{rank: freeRank, gap: freeRank}
	}
	init.pitem = 1
	e := &explorer{cfg: cfg, visited: map[state]bool{}}
	if cfg.CheckLiveness {
		e.edges = map[state][]state{}
		e.terminals = map[state]bool{}
		e.assumed = map[state]bool{}
	}
	if err := e.dfs(init); err != nil {
		return e.result, err
	}
	if cfg.CheckLiveness {
		if err := e.liveness(); err != nil {
			return e.result, err
		}
	}
	return e.result, nil
}

// liveness verifies that a terminal state is reachable from every
// visited state, by a reverse closure from the terminals.
func (e *explorer) liveness() error {
	// Build the reverse adjacency.
	rev := make(map[state][]state, len(e.edges))
	for from, tos := range e.edges {
		for _, to := range tos {
			rev[to] = append(rev[to], from)
		}
	}
	canFinish := make(map[state]bool, len(e.visited))
	var stack []state
	for t := range e.terminals {
		canFinish[t] = true
		stack = append(stack, t)
	}
	for t := range e.assumed {
		if !canFinish[t] {
			canFinish[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !canFinish[p] {
				canFinish[p] = true
				stack = append(stack, p)
			}
		}
	}
	for s := range e.visited {
		if !canFinish[s] {
			return fmt.Errorf("modelcheck: livelock — no terminal reachable from %+v", s)
		}
	}
	return nil
}

type explorer struct {
	cfg       Config
	visited   map[state]bool
	edges     map[state][]state // only with CheckLiveness
	terminals map[state]bool    // only with CheckLiveness
	assumed   map[state]bool    // states whose continuation was pruned
	result    Result
}

func (e *explorer) dfs(s state) error {
	if e.visited[s] {
		return nil
	}
	if len(e.visited) >= e.cfg.MaxStates {
		return fmt.Errorf("modelcheck: state budget of %d exhausted", e.cfg.MaxStates)
	}
	e.visited[s] = true
	e.result.States++
	if int(s.gaps) > e.result.MaxGapsSeen {
		e.result.MaxGapsSeen = int(s.gaps)
	}
	if err := e.invariants(s); err != nil {
		return err
	}

	if e.terminal(s) {
		e.result.Terminals++
		if e.terminals != nil {
			e.terminals[s] = true
		}
		return e.checkTerminal(s)
	}

	progressed := false
	// Producer step.
	if s.ppc != pDone {
		next := e.stepProducer(s)
		if int(next.gaps) > e.cfg.MaxGaps {
			// Assumption violation (queue persistently full): prune
			// this schedule rather than explore unbounded skipping.
			// For the liveness pass such states count as vacuously
			// completable — the runs they cut off are exactly the ones
			// the paper's environment assumption excludes.
			progressed = true
			if e.assumed != nil {
				e.assumed[s] = true
			}
		} else {
			if next != s {
				progressed = true
			}
			if e.edges != nil {
				e.edges[s] = append(e.edges[s], next)
			}
			if err := e.dfs(next); err != nil {
				return err
			}
		}
	}
	// Consumer steps.
	for c := 0; c < e.cfg.Consumers; c++ {
		if s.cons[c].pc == cDone {
			continue
		}
		next := e.stepConsumer(s, c)
		if next != s {
			progressed = true
		}
		if e.edges != nil {
			e.edges[s] = append(e.edges[s], next)
		}
		if err := e.dfs(next); err != nil {
			return err
		}
	}
	if !progressed {
		return fmt.Errorf("modelcheck: stuck state (no thread can change the state): %+v", s)
	}
	return nil
}

func (e *explorer) terminal(s state) bool {
	if s.ppc != pDone {
		return false
	}
	for c := 0; c < e.cfg.Consumers; c++ {
		if s.cons[c].pc != cDone {
			return false
		}
	}
	return true
}

// invariants hold at every reachable state.
func (e *explorer) invariants(s state) error {
	if s.head < 0 || s.tail < 0 {
		return fmt.Errorf("modelcheck: negative counter in %+v", s)
	}
	for i := 0; i < e.cfg.Cells; i++ {
		c := s.cells[i]
		if c.rank != freeRank && int(c.rank)%e.cfg.Cells != i {
			return fmt.Errorf("modelcheck: cell %d holds foreign rank %d", i, c.rank)
		}
		if c.gap != freeRank && int(c.gap)%e.cfg.Cells != i {
			return fmt.Errorf("modelcheck: cell %d holds foreign gap %d", i, c.gap)
		}
	}
	return nil
}

// checkTerminal verifies exactly-once delivery and per-consumer order.
func (e *explorer) checkTerminal(s state) error {
	seen := make([]bool, e.cfg.Items+1)
	for c := 0; c < e.cfg.Consumers; c++ {
		cs := s.cons[c]
		prev := int8(0)
		for k := int8(0); k < cs.taken; k++ {
			v := cs.recv[k]
			if v < 1 || int(v) > e.cfg.Items {
				return fmt.Errorf("modelcheck: consumer %d received bogus value %d", c, v)
			}
			if seen[v] {
				return fmt.Errorf("modelcheck: value %d delivered twice", v)
			}
			seen[v] = true
			if v <= prev {
				return fmt.Errorf("modelcheck: consumer %d order violation: %d after %d", c, v, prev)
			}
			prev = v
		}
	}
	for v := 1; v <= e.cfg.Items; v++ {
		if !seen[v] {
			return fmt.Errorf("modelcheck: value %d lost", v)
		}
	}
	return nil
}

// stepProducer performs the producer's next shared-memory access
// (Algorithm 1, FFQ_ENQ).
func (e *explorer) stepProducer(s state) state {
	n := int8(e.cfg.Cells)
	switch s.ppc {
	case pIdle:
		if int(s.pitem) > e.cfg.Items {
			s.ppc = pDone
			return s
		}
		s.ppc = pReadRank
		return s
	case pReadRank:
		s.pr = s.cells[s.tail%n].rank
		if s.pr >= 0 {
			s.ppc = pWriteGap // occupied: skip (separate shared write)
		} else {
			s.ppc = pWriteData
		}
		return s
	case pWriteGap:
		// Announce the gap (Algorithm 1 line 14); the private tail
		// increment rides along with the single shared write.
		s.cells[s.tail%n].gap = s.tail
		s.tail++
		s.gaps++
		s.ppc = pReadRank
		return s
	case pWriteData:
		if e.cfg.Mutation == MutationRankBeforeData {
			// Publish the rank first (the bug footnote 3's barrier
			// prevents); the data store happens in the next step.
			s.cells[s.tail%n].rank = s.tail
		} else {
			s.cells[s.tail%n].data = s.pitem
		}
		s.ppc = pWriteRank
		return s
	case pWriteRank:
		if e.cfg.Mutation == MutationRankBeforeData {
			s.cells[s.tail%n].data = s.pitem
		} else {
			s.cells[s.tail%n].rank = s.tail
		}
		s.tail++
		s.pitem++
		s.ppc = pIdle
		return s
	default:
		return s
	}
}

// stepConsumer performs consumer c's next shared-memory access
// (Algorithm 1, FFQ_DEQ).
func (e *explorer) stepConsumer(s state, c int) state {
	n := int8(e.cfg.Cells)
	cs := &s.cons[c]
	switch cs.pc {
	case cIdle:
		if int(cs.taken) >= e.cfg.Takes[c] {
			cs.pc = cDone
			return s
		}
		cs.pc = cAcquire
		return s
	case cAcquire:
		cs.rank = s.head // fetch-and-increment (one atomic step)
		s.head++
		cs.pc = cReadRank
		return s
	case cReadRank:
		cs.r = s.cells[cs.rank%n].rank
		if cs.r == cs.rank {
			cs.pc = cReadData
		} else {
			cs.pc = cReadGap
		}
		return s
	case cReadData:
		v := s.cells[cs.rank%n].data
		cs.recv[cs.taken] = v
		cs.pc = cClearRank
		return s
	case cClearRank:
		s.cells[cs.rank%n].rank = freeRank
		cs.taken++
		cs.pc = cIdle
		return s
	case cReadGap:
		cs.g = s.cells[cs.rank%n].gap
		cs.pc = cRecheckRank
		return s
	case cRecheckRank:
		r2 := s.cells[cs.rank%n].rank
		if e.cfg.Mutation == MutationNoRecheck {
			r2 = freeRank // pretend the re-check never matches
		}
		if cs.g >= cs.rank && r2 != cs.rank {
			// Rank skipped: acquire a new one (lines 29-31).
			cs.pc = cAcquire
		} else {
			// Back off and re-poll (line 32).
			cs.pc = cReadRank
		}
		return s
	default:
		return s
	}
}
