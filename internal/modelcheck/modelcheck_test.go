package modelcheck

import "testing"

func TestValidation(t *testing.T) {
	bad := []Config{
		{Cells: 0, Items: 2, Consumers: 1, Takes: []int{2}},
		{Cells: 9, Items: 2, Consumers: 1, Takes: []int{2}},
		{Cells: 2, Items: 0, Consumers: 1, Takes: []int{0}},
		{Cells: 2, Items: 2, Consumers: 0, Takes: nil},
		{Cells: 2, Items: 2, Consumers: 1, Takes: []int{1}}, // sum mismatch
		{Cells: 2, Items: 2, Consumers: 2, Takes: []int{2}}, // count mismatch
	}
	for i, cfg := range bad {
		if _, err := Explore(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// Single consumer, queue bigger than the items: trivially sequential
// interleavings, but validates the harness end to end.
func TestTinySequential(t *testing.T) {
	res, err := Explore(Config{Cells: 4, Items: 3, Consumers: 1, Takes: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminals == 0 || res.States == 0 {
		t.Fatalf("%+v", res)
	}
}

// Two consumers on a two-cell queue with wrap-around: exercises gap
// creation, gap supersession and the re-check of line 29 across every
// schedule.
func TestTwoConsumersWrapAround(t *testing.T) {
	res, err := Explore(Config{Cells: 2, Items: 4, Consumers: 2, Takes: []int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d terminals=%d maxGaps=%d", res.States, res.Terminals, res.MaxGapsSeen)
	if res.MaxGapsSeen == 0 {
		t.Error("no schedule produced a gap; the configuration is too easy")
	}
}

// Liveness: from every reachable state a terminal remains reachable
// (the model-level progress property behind Propositions 1-2).
func TestLiveness(t *testing.T) {
	res, err := Explore(Config{
		Cells: 2, Items: 3, Consumers: 2, Takes: []int{2, 1},
		CheckLiveness: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.States == 0 {
		t.Fatal("no states explored")
	}
}

// Three consumers with asymmetric takes on a tiny ring.
func TestThreeConsumers(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := Explore(Config{
		Cells: 2, Items: 3, Consumers: 3, Takes: []int{1, 1, 1},
		MaxStates: 8_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("states=%d terminals=%d maxGaps=%d", res.States, res.Terminals, res.MaxGapsSeen)
}

// A deliberately broken model variant is beyond this package's scope,
// but the bounds checks must reject oversized configurations rather
// than overflow the fixed-size state arrays.
func TestBoundsRejected(t *testing.T) {
	if _, err := Explore(Config{Cells: 2, Items: maxItems, Consumers: 1, Takes: []int{maxItems}}); err == nil {
		t.Error("item bound not enforced")
	}
}

// Mutation validation: the checker must rediscover the two races the
// paper documents when their countermeasures are removed.
func TestMutationNoRecheckCaught(t *testing.T) {
	// The lost element manifests as livelock: the consumer that
	// skipped it spins forever on a rank that will never be published,
	// so no terminal remains reachable — hence CheckLiveness.
	_, err := Explore(Config{
		Cells: 2, Items: 4, Consumers: 2, Takes: []int{2, 2},
		Mutation: MutationNoRecheck, CheckLiveness: true,
	})
	if err == nil {
		t.Fatal("dropping the line-29 re-check went undetected")
	}
	t.Logf("caught: %v", err)
}

func TestMutationRankBeforeDataCaught(t *testing.T) {
	_, err := Explore(Config{
		Cells: 2, Items: 4, Consumers: 2, Takes: []int{2, 2},
		Mutation: MutationRankBeforeData,
	})
	if err == nil {
		t.Fatal("publishing rank before data went undetected")
	}
	t.Logf("caught: %v", err)
}
