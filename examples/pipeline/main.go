// Pipeline: a three-stage processing pipeline connected by FFQ SPSC
// queues — the pipeline-parallelism use case that motivated the SPSC
// queue family the paper builds on (FastForward, MCRingBuffer,
// BatchQueue; Section II).
//
// Stage 1 generates records, stage 2 transforms them, stage 3
// aggregates. Each stage is one goroutine; adjacent stages share one
// SPSC queue, so no stage ever contends with more than one neighbour.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"hash/fnv"

	"ffq"
)

const (
	records   = 200_000
	queueSize = 4096
)

type record struct {
	id      uint64
	payload uint64
}

func main() {
	s1to2, err := ffq.NewSPSC[record](queueSize)
	if err != nil {
		panic(err)
	}
	s2to3, err := ffq.NewSPSC[record](queueSize)
	if err != nil {
		panic(err)
	}

	// Stage 2: transform (hash the payload).
	//ffq:detached joins via queue shutdown: s2to3.Close() signals stage 3, which main drains to completion
	go func() {
		for {
			r, ok := s1to2.Dequeue()
			if !ok {
				s2to3.Close()
				return
			}
			h := fnv.New64a()
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(r.payload >> (8 * i))
			}
			h.Write(b[:])
			r.payload = h.Sum64()
			s2to3.Enqueue(r)
		}
	}()

	// Stage 3: aggregate.
	done := make(chan uint64)
	go func() {
		var xor uint64
		var count int
		for {
			r, ok := s2to3.Dequeue()
			if !ok {
				fmt.Printf("stage 3 aggregated %d records\n", count)
				done <- xor
				return
			}
			xor ^= r.payload
			count++
		}
	}()

	// Stage 1: generate.
	for i := uint64(0); i < records; i++ {
		s1to2.Enqueue(record{id: i, payload: i * 2654435761})
	}
	s1to2.Close()

	fmt.Printf("pipeline checksum: %#x\n", <-done)
}
