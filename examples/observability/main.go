// Example observability: attach instrumentation to a queue, read the
// counters through the public Stats facade, and expose them through
// expvar and the Prometheus text format.
//
// A deliberately tiny SPMC queue is driven by one producer and two
// artificially slow consumers, so every instrument registers: the
// producer runs into the full queue and burns ranks (gaps), consumers
// block on the empty queue after the close, and the blocking-wait
// histogram fills in between.
package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ffq"
	"ffq/internal/obs/expvarx"
)

func main() {
	q, err := ffq.NewSPMC[int](8,
		ffq.WithInstrumentation(),
		ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		panic(err)
	}

	// Expose the queue. In a service this line plus an http.ListenAndServe
	// is all Prometheus needs; here we render the exposition by hand.
	if err := expvarx.Register("example", expvarx.QueueInfo{
		Stats: q.Stats,
		Len:   q.Len,
		Cap:   q.Cap(),
	}); err != nil {
		panic(err)
	}

	const items = 10_000
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, ok := q.Dequeue(); !ok {
					return
				}
				// Pretend each item takes a little work, keeping the
				// tiny queue full and the producer skipping ranks.
				for t := time.Now(); time.Since(t) < time.Microsecond; {
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()

	s := q.Stats()
	fmt.Println("queue drained; counters:")
	fmt.Printf("  enqueues        %d\n", s.Enqueues)
	fmt.Printf("  dequeues        %d\n", s.Dequeues)
	fmt.Printf("  full spins      %d\n", s.FullSpins)
	fmt.Printf("  empty spins     %d\n", s.EmptySpins)
	fmt.Printf("  gaps created    %d (also via q.Gaps() = %d)\n", s.GapsCreated, q.Gaps())
	fmt.Printf("  gaps skipped    %d\n", s.GapsSkipped)
	fmt.Printf("  spin ratio      %.3f spins/op\n", s.SpinRatio())
	if s.WaitCount > 0 {
		fmt.Printf("  blocking waits  %d, mean %s\n", s.WaitCount, s.MeanWait())
	}
	if s.Enqueues-s.Dequeues != int64(q.Len()) {
		panic("accounting identity violated")
	}

	fmt.Println("\nPrometheus exposition (excerpt):")
	for _, line := range strings.Split(expvarx.Exposition(), "\n") {
		if strings.HasPrefix(line, "ffq_enqueues_total") ||
			strings.HasPrefix(line, "ffq_gaps_created_total") ||
			strings.HasPrefix(line, "ffq_wait_ns_count") {
			fmt.Println("  " + line)
		}
	}
}
