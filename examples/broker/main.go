// Broker: FFQ fan-out put on the network. This example runs an
// in-process ffqd broker, connects three clients over real loopback
// TCP — one producer, two competing consumers — and moves 10,000
// messages through a topic:
//
//   - the producer's Publish calls are auto-batched into PRODUCE
//     frames (one frame per ~64 messages, amortizing the syscall the
//     way EnqueueBatch amortizes the rank fetch-and-add);
//
//   - the broker stages each connection's frames through a bounded
//     SPSC queue (the paper's one-queue-per-producer shape) and feeds
//     a per-topic unbounded MPMC queue;
//
//   - the consumers claim competitively with TryDequeue under a
//     credit window, so each message is delivered exactly once and a
//     stalled consumer only idles its own window;
//
//   - Shutdown drains: staged batches are flushed, the topic closes,
//     and each subscription receives every remaining message before
//     its end-of-stream marker.
//
//     go run ./examples/broker
package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ffq/internal/broker"
	"ffq/internal/broker/client"
)

const (
	total     = 10_000
	consumers = 2
)

func main() {
	b, err := broker.New(broker.Options{})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(ln) }()
	addr := ln.Addr().String()

	// Two consumers join the topic's competitive pool: each message
	// goes to exactly one of them.
	var wg sync.WaitGroup
	counts := make([]int, consumers)
	for i := 0; i < consumers; i++ {
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			panic(err)
		}
		sub, err := c.Subscribe("orders", 256)
		if err != nil {
			panic(err)
		}
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			defer c.Close()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
				counts[i]++
			}
		}(i, c)
	}

	// One producer publishes and drains; Drain returning nil means the
	// broker ACKed (accepted into a topic queue) every message.
	p, err := client.Dial(addr, client.Options{})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for n := 0; n < total; n++ {
		if err := p.Publish("orders", fmt.Appendf(nil, "order-%d", n)); err != nil {
			panic(err)
		}
	}
	if err := p.Drain(); err != nil {
		panic(err)
	}
	p.Close()

	// Graceful drain: consumers receive everything in flight, then
	// their end-of-stream markers; Recv returns ok=false and the
	// goroutines exit.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Shutdown(ctx); err != nil {
		panic(err)
	}
	wg.Wait()
	// Shutdown closed the listener, so Serve has returned; join it and
	// surface any accept-loop error it swallowed.
	if err := <-serveErr; err != nil {
		panic(err)
	}

	sum := 0
	for i, n := range counts {
		fmt.Printf("consumer %d received %d\n", i, n)
		sum += n
	}
	m := b.Metrics()
	fmt.Printf("total %d/%d in %s (%d PRODUCE frames in, %d DELIVER frames out)\n",
		sum, total, time.Since(start).Round(time.Millisecond),
		m.ProduceFrames.Load(), m.DeliverFrames.Load())
	if sum != total {
		panic("message loss")
	}
}
