// Syscallproxy: the scenario that motivated FFQ (Section I of the
// paper). Application threads "inside an enclave" issue system calls
// by messaging a kernel-side worker pool through an FFQ SPMC
// submission queue; results come back through per-worker SPSC response
// queues. This example runs the simulated enclave framework of
// internal/enclave and prints the throughput of the three variants the
// paper's Figure 7 compares.
//
//	go run ./examples/syscallproxy
package main

import (
	"fmt"
	"runtime"

	"ffq/internal/enclave"
	"ffq/internal/syscalls"
)

func main() {
	fmt.Printf("simulated getppid() through the enclave syscall proxy (NumCPU=%d)\n\n", runtime.NumCPU())
	const callsPerAppThread = 20_000

	for _, v := range enclave.Variants {
		cfg := enclave.Config{
			Variant:         v,
			OSThreads:       2,
			AppThreadsPerOS: 4,
			WorkersPerOS:    2,
			Call:            syscalls.GetPPID,
		}
		res, err := enclave.RunThroughput(cfg, callsPerAppThread)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %8.0f calls/s (%d calls in %v)\n",
			v.String(), res.CallsPerSec(), res.Calls, res.Elapsed.Round(1e6))
	}

	fmt.Println("\nsingle-thread end-to-end latency:")
	for _, v := range enclave.Variants {
		sum, err := enclave.MeasureLatency(enclave.Config{
			Variant: v, OSThreads: 1, AppThreadsPerOS: 1, WorkersPerOS: 1,
			Call: syscalls.GetPPID,
		}, 20_000)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s mean %6.0f ns  (min %.0f, max %.0f)\n", v.String(), sum.Mean, sum.Min, sum.Max)
	}
}
