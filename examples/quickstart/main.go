// Quickstart: one producer fans work out to a pool of consumers
// through an FFQ SPMC queue — the paper's headline configuration.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ffq"
)

func main() {
	// A power-of-two capacity sized so the queue never fills (the
	// producer stays wait-free; see the package docs).
	q, err := ffq.NewSPMC[int](1024, ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		panic(err)
	}

	const consumers = 4
	const jobs = 100_000

	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var handled int
			for {
				job, ok := q.Dequeue()
				if !ok {
					// Queue closed and drained.
					fmt.Printf("consumer %d handled %d jobs\n", c, handled)
					return
				}
				sum.Add(int64(job))
				handled++
			}
		}(c)
	}

	for j := 1; j <= jobs; j++ {
		q.Enqueue(j)
	}
	q.Close()
	wg.Wait()

	want := int64(jobs) * (jobs + 1) / 2
	fmt.Printf("sum = %d (want %d, match = %v)\n", sum.Load(), want, sum.Load() == want)
}
