// Fanout: the full submission/response topology of the paper's
// microbenchmark (Section V-A) built directly on the public API: one
// producer owns an SPMC submission queue and one SPSC response queue
// per consumer; consumers echo each item back; the producer drains the
// responses — at most `window` requests in flight, which is the
// "implicit flow control" that keeps the FFQ enqueue wait-free.
//
//	go run ./examples/fanout
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ffq"
)

const (
	consumers = 3
	items     = 300_000
	queueSize = 1024
	window    = queueSize / 2
)

func main() {
	sub, err := ffq.NewSPMC[uint64](queueSize, ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		panic(err)
	}
	resps := make([]*ffq.SPSC[uint64], consumers)
	for i := range resps {
		if resps[i], err = ffq.NewSPSC[uint64](queueSize); err != nil {
			panic(err)
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				v, ok := sub.Dequeue()
				if !ok {
					resps[c].Close()
					return
				}
				resps[c].Enqueue(v * 2) // "process" the request
			}
		}(c)
	}

	start := time.Now()
	var sent, received, outstanding int
	var sum uint64
	for received < items {
		for sent < items && outstanding < window {
			sub.Enqueue(uint64(sent + 1))
			sent++
			outstanding++
		}
		drained := false
		for _, r := range resps {
			if v, ok := r.TryDequeue(); ok {
				sum += v
				received++
				outstanding--
				drained = true
			}
		}
		if !drained {
			runtime.Gosched() // let consumers run instead of busy-polling
		}
	}
	sub.Close()
	wg.Wait()
	elapsed := time.Since(start)

	want := uint64(items) * (items + 1) // sum of 2*i
	fmt.Printf("%d round-trips in %v (%.2f M/s), checksum ok: %v\n",
		received, elapsed.Round(time.Millisecond),
		float64(received)/elapsed.Seconds()/1e6, sum == want)
}
