// Benchmarks regenerating every figure of the FFQ paper's evaluation
// (Figures 2-8) as testing.B benchmarks. Each benchmark reports the
// figure's headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// produces one row per (figure, configuration) data point. The cmd/
// tools produce the same series as full tables; these benchmarks are
// the `go test` native face of the same experiments.
package ffq_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/allqueues"
	"ffq/internal/core"
	"ffq/internal/enclave"
	"ffq/internal/htmqueue"
	"ffq/internal/perfmodel"
	"ffq/internal/segq"
	"ffq/internal/spscqueues"
	"ffq/internal/syscalls"
	"ffq/internal/workload"
)

// BenchmarkFig2Layouts measures the false-sharing configurations of
// Figure 2: FFQ^m round-trip throughput under the four cell layouts.
func BenchmarkFig2Layouts(b *testing.B) {
	configs := []struct {
		name                 string
		producers, consumers int
	}{
		{"1p1c", 1, 1},
		{"1p8c", 1, 8},
		{"8p8c", 8, 8},
	}
	for _, cfg := range configs {
		for _, layout := range core.Layouts {
			b.Run(fmt.Sprintf("%s/%s", cfg.name, layout), func(b *testing.B) {
				items := b.N/cfg.producers + 1
				res, err := workload.RunMicro(workload.MicroConfig{
					Variant:              workload.VariantMPMC,
					Layout:               layout,
					Producers:            cfg.producers,
					ConsumersPerProducer: cfg.consumers,
					ItemsPerProducer:     items,
					QueueSize:            1 << 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MopsPerSec(), "Mops/s")
			})
		}
	}
}

// BenchmarkFig3QueueSize measures 1p/1c round-trip throughput as a
// function of the queue size (Figure 3).
func BenchmarkFig3QueueSize(b *testing.B) {
	for _, size := range []int{1 << 6, 1 << 10, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			res, err := workload.RunMicro(workload.MicroConfig{
				Variant:              workload.VariantSPMC,
				Layout:               core.LayoutPadded,
				Producers:            1,
				ConsumersPerProducer: 1,
				ItemsPerProducer:     b.N,
				QueueSize:            size,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerSec(), "Mops/s")
		})
	}
}

// BenchmarkFig4SimCounters runs the cache-hierarchy simulation behind
// Figure 4 and reports IPC and the L2 hit ratio per affinity policy.
func BenchmarkFig4SimCounters(b *testing.B) {
	for _, policy := range affinity.Policies {
		for _, size := range []int{1 << 10, 1 << 14, 1 << 18} {
			b.Run(fmt.Sprintf("%s/entries=%d", policy, size), func(b *testing.B) {
				cfg := perfmodel.DefaultConfig()
				cfg.Policy = policy
				cfg.QueueEntries = size
				cfg.Items = b.N
				res, err := perfmodel.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "sim-IPC")
				b.ReportMetric(res.L2HitRatio, "sim-L2hit")
			})
		}
	}
}

// BenchmarkFig5SimMemory runs the simulation behind Figure 5 and
// reports the L3 hit ratio and memory bandwidth per policy.
func BenchmarkFig5SimMemory(b *testing.B) {
	for _, policy := range affinity.Policies {
		for _, size := range []int{1 << 12, 1 << 18} {
			b.Run(fmt.Sprintf("%s/entries=%d", policy, size), func(b *testing.B) {
				cfg := perfmodel.DefaultConfig()
				cfg.Policy = policy
				cfg.QueueEntries = size
				cfg.Items = b.N
				res, err := perfmodel.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.L3HitRatio, "sim-L3hit")
				b.ReportMetric(res.MemBandwidthGBs, "sim-GB/s")
			})
		}
	}
}

// BenchmarkFig6Affinity measures real pinned-thread throughput per
// placement policy and queue size (Figure 6).
func BenchmarkFig6Affinity(b *testing.B) {
	for _, policy := range affinity.Policies {
		for _, size := range []int{1 << 6, 1 << 12, 1 << 18} {
			b.Run(fmt.Sprintf("%s/entries=%d", policy, size), func(b *testing.B) {
				res, err := workload.RunMicro(workload.MicroConfig{
					Variant:              workload.VariantSPMC,
					Layout:               core.LayoutPadded,
					Producers:            1,
					ConsumersPerProducer: 1,
					ItemsPerProducer:     b.N,
					QueueSize:            size,
					Policy:               policy,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MopsPerSec(), "Mops/s")
			})
		}
	}
}

// BenchmarkFig7Syscall measures simulated-enclave getppid throughput
// per framework variant (Figure 7, left panel).
func BenchmarkFig7Syscall(b *testing.B) {
	cores := runtime.NumCPU()
	if cores > 4 {
		cores = 4
	}
	for _, v := range enclave.Variants {
		b.Run(v.String(), func(b *testing.B) {
			calls := b.N/(cores*4) + 1
			res, err := enclave.RunThroughput(enclave.Config{
				Variant:         v,
				OSThreads:       cores,
				AppThreadsPerOS: 4,
				WorkersPerOS:    2,
				Call:            syscalls.GetPPID,
			}, calls)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.CallsPerSec()/1e6, "Mcalls/s")
		})
	}
}

// BenchmarkFig7Latency measures single-thread end-to-end syscall
// latency per variant (Figure 7, right panel).
func BenchmarkFig7Latency(b *testing.B) {
	for _, v := range enclave.Variants {
		b.Run(v.String(), func(b *testing.B) {
			sum, err := enclave.MeasureLatency(enclave.Config{
				Variant: v, OSThreads: 1, AppThreadsPerOS: 1, WorkersPerOS: 1,
				Call: syscalls.GetPPID,
			}, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(sum.Mean, "ns/call")
		})
	}
}

// BenchmarkFig8Compare runs the comparative pairs benchmark of
// Figure 8 for every queue in the registry over a small thread sweep.
func BenchmarkFig8Compare(b *testing.B) {
	threads := []int{1, 2, 4}
	for _, f := range allqueues.Factories() {
		for _, th := range threads {
			if f.MaxThreads != 0 && th > f.MaxThreads {
				continue
			}
			f, th := f, th
			b.Run(fmt.Sprintf("%s/t=%d", f.Name, th), func(b *testing.B) {
				res := workload.RunPairs(workload.PairsConfig{
					Factory:    f.Factory,
					Threads:    th,
					TotalPairs: b.N,
					Capacity:   1 << 16,
					DelayMinNS: 50,
					DelayMaxNS: 150,
				})
				b.ReportMetric(res.MopsPerSec(), "Mops/s")
			})
		}
	}
}

// BenchmarkCoreOps measures the raw single-threaded cost of one
// enqueue+dequeue pair on each FFQ variant through the public-facing
// core API (the "SPSC"/"SPMC" single-thread marks of Figure 8).
func BenchmarkCoreOps(b *testing.B) {
	b.Run("spsc", func(b *testing.B) {
		q, _ := core.NewSPSC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.TryDequeue()
		}
	})
	b.Run("spmc", func(b *testing.B) {
		q, _ := core.NewSPMC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	b.Run("mpmc", func(b *testing.B) {
		q, _ := core.NewMPMC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
}

// BenchmarkUnboundedOps prices the unbounded segmented queues
// (internal/segq) against the bounded core variants. The single-op
// sub-benchmarks are the acceptance gate for the segmented indirection
// (useg-spmc/single must stay within ~15% of bounded-spmc/single at a
// matching segment size); the batch sub-benchmarks show the native
// contiguous-run reservations amortizing the tail publication and rank
// claim (per-element cost at batch=64 should be at least 2x better
// than batch=1). The seg=64 sub-benchmark keeps segments tiny so every
// 64 ops retire and recycle one — the steady-state price of the
// recycling pool.
func BenchmarkUnboundedOps(b *testing.B) {
	resolved := func(seg int) core.Resolved {
		return core.ResolveOptions(core.WithLayout(core.LayoutPadded), core.WithSegmentSize(seg))
	}
	b.Run("bounded-spmc/single", func(b *testing.B) {
		q, _ := core.NewSPMC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	b.Run("useg-spmc/single", func(b *testing.B) {
		q, _ := segq.NewSPMC[uint64](resolved(1 << 16))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	b.Run("useg-mpmc/single", func(b *testing.B) {
		q, _ := segq.NewMPMC[uint64](resolved(1 << 16))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	b.Run("useg-spmc/seg=64", func(b *testing.B) {
		q, _ := segq.NewSPMC[uint64](resolved(64))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.Dequeue()
		}
	})
	for _, batch := range []int{1, 8, 64} {
		batch := batch
		b.Run(fmt.Sprintf("useg-spmc/batch=%d", batch), func(b *testing.B) {
			q, _ := segq.NewSPMC[uint64](resolved(1 << 16))
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.EnqueueBatch(src)
				q.DequeueBatch(dst)
			}
		})
		b.Run(fmt.Sprintf("useg-mpmc/batch=%d", batch), func(b *testing.B) {
			q, _ := segq.NewMPMC[uint64](resolved(1 << 16))
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.EnqueueBatch(src)
				q.DequeueBatch(dst)
			}
		})
	}
}

// BenchmarkCoreBatchOps prices the single-FAA batch claims on the
// bounded core variants against their single-op paths, plus the
// sharded queue's handle path. The bounded-spmc series is the
// acceptance gate for the batch API: one head.Add(k) claims k
// contiguous ranks, so per-element cost at batch=64 should be at
// least 2x better than batch=1 (the same gate style as the segq batch
// series in BenchmarkUnboundedOps).
func BenchmarkCoreBatchOps(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		batch := batch
		b.Run(fmt.Sprintf("bounded-spmc/batch=%d", batch), func(b *testing.B) {
			q, _ := core.NewSPMC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.EnqueueBatch(src)
				q.DequeueBatch(dst)
			}
		})
		b.Run(fmt.Sprintf("bounded-mpmc/batch=%d", batch), func(b *testing.B) {
			q, _ := core.NewMPMC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.EnqueueBatch(src)
				q.DequeueBatch(dst)
			}
		})
		b.Run(fmt.Sprintf("sharded/batch=%d", batch), func(b *testing.B) {
			q, _ := core.NewSharded[uint64](2, 1<<16, core.WithLayout(core.LayoutPadded))
			h, ok := q.Acquire()
			if !ok {
				b.Fatal("lane acquisition failed")
			}
			defer h.Release()
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				h.EnqueueBatch(src)
				q.DequeueBatch(dst)
			}
		})
	}
}

// BenchmarkLineSPSC is the acceptance gate for the line-granular SPSC
// (DESIGN.md §4.10): against the scalar SPSC on the same
// single-threaded enqueue+dequeue pairing, line/batch=64 must be at
// least 1.5x faster per element and line/single must stay within 1.15x
// of scalar/single (TestLineBeatsScalarSPSC is the CI gate; this is
// its benchmark face). The scalar baseline uses EnqueueBatch-free
// single ops at batch=1 and a TryDequeue drain loop at larger batches,
// which is the cheapest scalar formulation available.
func BenchmarkLineSPSC(b *testing.B) {
	b.Run("scalar/single", func(b *testing.B) {
		q, _ := core.NewSPSC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.TryDequeue()
		}
	})
	b.Run("line/single", func(b *testing.B) {
		q, _ := core.NewLineSPSC[uint64](1 << 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enqueue(uint64(i))
			q.TryDequeue()
		}
	})
	for _, batch := range []int{8, 64} {
		batch := batch
		b.Run(fmt.Sprintf("scalar/batch=%d", batch), func(b *testing.B) {
			q, _ := core.NewSPSC[uint64](1<<16, core.WithLayout(core.LayoutPadded))
			src := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for _, v := range src {
					q.Enqueue(v)
				}
				for range src {
					q.TryDequeue()
				}
			}
		})
		b.Run(fmt.Sprintf("line/batch=%d", batch), func(b *testing.B) {
			q, _ := core.NewLineSPSC[uint64](1 << 16)
			src := make([]uint64, batch)
			dst := make([]uint64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				q.EnqueueBatch(src)
				q.TryDequeueBatch(dst)
			}
		})
	}
}

// BenchmarkShardedVsMPMC is the benchmark face of the fan-in
// comparison (and the TestShardedBeatsMPMC gate): 4 producers push
// into one shared queue drained by 4 consumers, once through a single
// FFQ^m and once through the sharded per-producer-lane queue. On >= 4
// real cores the sharded side should report at least 1.5x the Mops/s.
func BenchmarkShardedVsMPMC(b *testing.B) {
	for _, v := range []workload.Variant{workload.VariantMPMC, workload.VariantSharded} {
		v := v
		b.Run(fmt.Sprintf("%s/4p4c", v), func(b *testing.B) {
			res, err := workload.RunFanIn(workload.FanInConfig{
				Variant:          v,
				Producers:        4,
				Consumers:        4,
				ItemsPerProducer: b.N/4 + 1,
				QueueSize:        1 << 12,
				Layout:           core.LayoutPadded,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerSec(), "Mops/s")
		})
	}
}

// BenchmarkSPSCLineage measures the related-work SPSC queues of
// Section II against the FFQ SPSC variant (streaming transfer).
func BenchmarkSPSCLineage(b *testing.B) {
	for _, f := range spscqueues.Factories() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			res, err := workload.RunStream(workload.StreamConfig{
				Factory:  f,
				Items:    b.N,
				Capacity: 1 << 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerSec(), "Mops/s")
		})
	}
}

// BenchmarkAblationMCRingBatch sweeps MCRingBuffer's control-update
// batch size (the knob its paper tunes; Section II background).
func BenchmarkAblationMCRingBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 128} {
		batch := batch
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			f := spscqueues.Factory{
				Name:     fmt.Sprintf("mcring-%d", batch),
				Batching: true,
				New: func(c int) (spscqueues.Queue, error) {
					return spscqueues.NewMCRing(c, batch)
				},
			}
			res, err := workload.RunStream(workload.StreamConfig{
				Factory: f, Items: b.N, Capacity: 1 << 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MopsPerSec(), "Mops/s")
		})
	}
}

// BenchmarkAblationHTMRetries sweeps the HTM queue's optimistic retry
// budget: 0 degenerates to a global lock, large budgets burn work
// under contention — the trade-off behind the paper's observation that
// "transactional operations and retries are costly".
func BenchmarkAblationHTMRetries(b *testing.B) {
	for _, retries := range []int{0, 2, 8, 32} {
		retries := retries
		b.Run(fmt.Sprintf("retries=%d", retries), func(b *testing.B) {
			q, err := htmqueue.NewWithRetries(1<<12, retries)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q.Enqueue(1)
					for {
						if _, ok := q.Dequeue(); ok {
							break
						}
					}
				}
			})
			commits, aborts, fallbacks := q.Stats()
			if commits > 0 {
				b.ReportMetric(float64(aborts)/float64(commits), "aborts/commit")
				b.ReportMetric(float64(fallbacks)/float64(commits), "fallbacks/commit")
			}
		})
	}
}

// BenchmarkAblationPrefetchDepth sweeps the simulated streaming
// prefetcher (0 = off), showing its effect on the modeled L2 hit
// ratio behind Figure 4.
func BenchmarkAblationPrefetchDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 4, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cfg := perfmodel.DefaultConfig()
			cfg.Cache.PrefetchDepth = depth
			cfg.QueueEntries = 1 << 14
			cfg.Items = b.N
			res, err := perfmodel.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.L2HitRatio, "sim-L2hit")
			b.ReportMetric(res.ThroughputMops, "sim-Mops/s")
		})
	}
}

// BenchmarkInstrumentation is the cost gate for the observability
// layer. The "off" sub-benchmarks build the queue without a recorder —
// they must stay within noise (<3%) of the pre-instrumentation
// BenchmarkCoreOps numbers, since the disabled path adds only one
// predicted nil-check branch per operation. The "on" sub-benchmarks
// price the enabled path (a few uncontended atomic additions per
// enqueue/dequeue pair).
func BenchmarkInstrumentation(b *testing.B) {
	modes := []struct {
		name string
		opts []core.Option
	}{
		{"off", []core.Option{core.WithLayout(core.LayoutPadded)}},
		{"on", []core.Option{core.WithLayout(core.LayoutPadded), core.WithInstrumentation()}},
	}
	for _, m := range modes {
		b.Run("spsc/"+m.name, func(b *testing.B) {
			q, _ := core.NewSPSC[uint64](1<<16, m.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.TryDequeue()
			}
		})
		b.Run("spmc/"+m.name, func(b *testing.B) {
			q, _ := core.NewSPMC[uint64](1<<16, m.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.Dequeue()
			}
		})
		b.Run("mpmc/"+m.name, func(b *testing.B) {
			q, _ := core.NewMPMC[uint64](1<<16, m.opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.Dequeue()
			}
		})
	}
}

// BenchmarkLatencyOverhead prices the tail-latency instrumentation
// tiers on the single-threaded enqueue+dequeue pair of
// BenchmarkCoreOps. The "off" tier repeats the uninstrumented baseline
// and must stay within noise of BenchmarkCoreOps (~32/37/52 ns for
// spsc/spmc/mpmc): with no recorder attached every instrumentation
// site is one nil check. "counters" adds the PR-1 op counters;
// "latency" additionally attaches the per-op latency histograms and
// the stall watchdog (two clock reads per op — the documented price of
// latency mode, paid only when it is switched on).
func BenchmarkLatencyOverhead(b *testing.B) {
	tiers := []struct {
		name string
		opts []core.Option
	}{
		{"off", nil},
		{"counters", []core.Option{core.WithInstrumentation()}},
		{"latency", []core.Option{core.WithOpLatency(), core.WithStallWatchdog(time.Millisecond)}},
	}
	for _, tier := range tiers {
		opts := append([]core.Option{core.WithLayout(core.LayoutPadded)}, tier.opts...)
		b.Run("spsc/"+tier.name, func(b *testing.B) {
			q, _ := core.NewSPSC[uint64](1<<16, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.TryDequeue()
			}
		})
		b.Run("spmc/"+tier.name, func(b *testing.B) {
			q, _ := core.NewSPMC[uint64](1<<16, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.Dequeue()
			}
		})
		b.Run("mpmc/"+tier.name, func(b *testing.B) {
			q, _ := core.NewMPMC[uint64](1<<16, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i))
				q.Dequeue()
			}
		})
	}
}
