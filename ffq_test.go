package ffq_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"ffq"
)

func TestPublicSPSC(t *testing.T) {
	q, err := ffq.NewSPSC[string](8, ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	q.Enqueue("a")
	if !q.TryEnqueue("b") {
		t.Fatal("TryEnqueue failed")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryDequeue(); !ok || v != "a" {
		t.Fatalf("got %q,%v", v, ok)
	}
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != "b" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

func TestPublicSPMC(t *testing.T) {
	q, err := ffq.NewSPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 4
	const items = 10000
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	if !q.TryEnqueue(1) {
		t.Fatal("TryEnqueue on empty queue failed")
	}
	for i := 2; i <= items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
	if want := int64(items) * (items + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestPublicMPMC(t *testing.T) {
	q, err := ffq.NewMPMC[uint64](128, ffq.WithLayout(ffq.LayoutPaddedRandomized))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 5000
	var sum atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Enqueue(uint64(i + 1))
				v, _ := q.Dequeue()
				sum.Add(v)
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", q.Len())
	}
	want := uint64(workers) * perWorker * (perWorker + 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	q.Close()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

func TestPublicValidationErrors(t *testing.T) {
	if _, err := ffq.NewSPSC[int](3); err == nil {
		t.Error("SPSC: bad capacity accepted")
	}
	if _, err := ffq.NewSPMC[int](0); err == nil {
		t.Error("SPMC: bad capacity accepted")
	}
	if _, err := ffq.NewMPMC[int](-8); err == nil {
		t.Error("MPMC: bad capacity accepted")
	}
}
