package ffq_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ffq"
)

func TestPublicSPSC(t *testing.T) {
	q, err := ffq.NewSPSC[string](8, ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Fatalf("Cap = %d", q.Cap())
	}
	q.Enqueue("a")
	if !q.TryEnqueue("b") {
		t.Fatal("TryEnqueue failed")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryDequeue(); !ok || v != "a" {
		t.Fatalf("got %q,%v", v, ok)
	}
	q.Close()
	if v, ok := q.Dequeue(); !ok || v != "b" {
		t.Fatalf("got %q,%v", v, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

func TestPublicSPMC(t *testing.T) {
	q, err := ffq.NewSPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	const consumers = 4
	const items = 10000
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	if !q.TryEnqueue(1) {
		t.Fatal("TryEnqueue on empty queue failed")
	}
	for i := 2; i <= items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
	if want := int64(items) * (items + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

// TestPublicTryDequeue drains mixed Dequeue/TryDequeue consumers on
// every multi-consumer facade: empty polls must burn nothing and every
// item must arrive exactly once.
func TestPublicTryDequeue(t *testing.T) {
	spmc, err := ffq.NewSPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	mpmc, err := ffq.NewMPMC[int](64)
	if err != nil {
		t.Fatal(err)
	}
	type tryQueue interface {
		Enqueue(int)
		TryDequeue() (int, bool)
		Dequeue() (int, bool)
		Close()
	}
	for name, q := range map[string]tryQueue{"spmc": spmc, "mpmc": mpmc} {
		if v, ok := q.TryDequeue(); ok {
			t.Fatalf("%s: empty TryDequeue returned %d", name, v)
		}
		const items = 20000
		const consumers = 4
		var sum atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func(poll bool) {
				defer wg.Done()
				for {
					if poll {
						if v, ok := q.TryDequeue(); ok {
							sum.Add(int64(v))
							continue
						}
						// Nothing ready: fall through to Dequeue, which
						// distinguishes "still filling" (it blocks) from
						// closed-and-drained (it returns false).
					}
					v, ok := q.Dequeue()
					if !ok {
						return
					}
					sum.Add(int64(v))
				}
			}(c%2 == 0)
		}
		for i := 1; i <= items; i++ {
			q.Enqueue(i)
		}
		q.Close()
		wg.Wait()
		if want := int64(items) * (items + 1) / 2; sum.Load() != want {
			t.Fatalf("%s: sum = %d, want %d", name, sum.Load(), want)
		}
	}
}

func TestPublicMPMC(t *testing.T) {
	q, err := ffq.NewMPMC[uint64](128, ffq.WithLayout(ffq.LayoutPaddedRandomized))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 5000
	var sum atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q.Enqueue(uint64(i + 1))
				v, _ := q.Dequeue()
				sum.Add(v)
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", q.Len())
	}
	want := uint64(workers) * perWorker * (perWorker + 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	q.Close()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

func TestPublicValidationErrors(t *testing.T) {
	if _, err := ffq.NewSPSC[int](3); err == nil {
		t.Error("SPSC: bad capacity accepted")
	}
	if _, err := ffq.NewSPMC[int](0); err == nil {
		t.Error("SPMC: bad capacity accepted")
	}
	if _, err := ffq.NewMPMC[int](-8); err == nil {
		t.Error("MPMC: bad capacity accepted")
	}
}

// TestPublicInstrumentation exercises WithInstrumentation, Stats and
// Gaps through the facade on all three variants, with concurrent
// consumers, and checks the quiescence identity
// Enqueues - Dequeues == Len.
func TestPublicInstrumentation(t *testing.T) {
	const items = 500

	t.Run("spsc", func(t *testing.T) {
		q, err := ffq.NewSPSC[int](8, ffq.WithInstrumentation())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			q.Enqueue(i)
		}
		q.TryDequeue()
		s := q.Stats()
		if s.Enqueues != 3 || s.Dequeues != 1 {
			t.Fatalf("stats = %+v", s)
		}
		if s.Enqueues-s.Dequeues != int64(q.Len()) {
			t.Fatalf("Enqueues-Dequeues=%d Len=%d", s.Enqueues-s.Dequeues, q.Len())
		}
	})

	t.Run("spmc", func(t *testing.T) {
		q, err := ffq.NewSPMC[int](1<<6, ffq.WithInstrumentation(), ffq.WithYieldThreshold(4))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, ok := q.Dequeue(); !ok {
						return
					}
				}
			}()
		}
		for i := 0; i < items; i++ {
			q.Enqueue(i)
		}
		q.Close()
		wg.Wait()
		s := q.Stats()
		if s.Enqueues != items || s.Dequeues != items {
			t.Fatalf("stats = %+v", s)
		}
		if s.Enqueues-s.Dequeues != int64(q.Len()) {
			t.Fatalf("quiescence identity violated: %+v Len=%d", s, q.Len())
		}
		if s.GapsCreated != q.Gaps() {
			t.Fatalf("Stats gaps %d != Gaps() %d", s.GapsCreated, q.Gaps())
		}
	})

	t.Run("mpmc", func(t *testing.T) {
		q, err := ffq.NewMPMC[int](1<<6, ffq.WithInstrumentation())
		if err != nil {
			t.Fatal(err)
		}
		var prod, cons sync.WaitGroup
		for p := 0; p < 2; p++ {
			prod.Add(1)
			go func() {
				defer prod.Done()
				for i := 0; i < items; i++ {
					q.Enqueue(i)
				}
			}()
		}
		for c := 0; c < 3; c++ {
			cons.Add(1)
			go func() {
				defer cons.Done()
				for {
					if _, ok := q.Dequeue(); !ok {
						return
					}
				}
			}()
		}
		prod.Wait()
		q.Close()
		cons.Wait()
		s := q.Stats()
		if s.Enqueues != 2*items || s.Dequeues != 2*items {
			t.Fatalf("stats = %+v", s)
		}
		if s.Enqueues-s.Dequeues != int64(q.Len()) {
			t.Fatalf("quiescence identity violated: %+v Len=%d", s, q.Len())
		}
		if s.GapsCreated != q.Gaps() {
			t.Fatalf("Stats gaps %d != Gaps() %d", s.GapsCreated, q.Gaps())
		}
	})
}

// TestPublicGapsUninstrumented checks the satellite requirement that
// Gaps is available on every facade without instrumentation, and that
// Stats folds it in.
func TestPublicGapsUninstrumented(t *testing.T) {
	q, err := ffq.NewMPMC[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Gaps() != 0 {
		t.Fatalf("fresh queue Gaps = %d", q.Gaps())
	}
	// Fill the queue, then force a producer skip with a slow consumer.
	q.Enqueue(0)
	q.Enqueue(1)
	done := make(chan struct{})
	go func() {
		q.Enqueue(2)
		close(done)
	}()
	for q.Gaps() == 0 {
		runtime.Gosched()
	}
	if _, ok := q.Dequeue(); !ok {
		t.Fatal("Dequeue failed")
	}
	<-done
	if q.Gaps() == 0 {
		t.Fatal("Gaps not visible through facade")
	}
	if got := q.Stats().GapsCreated; got != q.Gaps() {
		t.Fatalf("Stats().GapsCreated = %d, Gaps() = %d", got, q.Gaps())
	}
}
