package ffq_test

import (
	"testing"
	"time"

	"ffq/internal/core"
)

// timeScalarSingles measures the scalar SPSC's per-element cost on the
// single-threaded enqueue+dequeue pairing, best of rounds.
func timeScalarSingles(items, rounds int) float64 {
	best := 0.0
	for r := 0; r < rounds; r++ {
		q, _ := core.NewSPSC[uint64](1<<14, core.WithLayout(core.LayoutPadded))
		start := time.Now()
		for i := 0; i < items; i++ {
			q.Enqueue(uint64(i))
			q.TryDequeue()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(items)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func timeLineSingles(items, rounds int) float64 {
	best := 0.0
	for r := 0; r < rounds; r++ {
		q, _ := core.NewLineSPSC[uint64](1 << 14)
		start := time.Now()
		for i := 0; i < items; i++ {
			q.Enqueue(uint64(i))
			q.TryDequeue()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(items)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// timeScalarBatch drives the scalar queue in runs of batch singles —
// the cheapest scalar formulation of batched transfer.
func timeScalarBatch(items, batch, rounds int) float64 {
	best := 0.0
	for r := 0; r < rounds; r++ {
		q, _ := core.NewSPSC[uint64](1<<14, core.WithLayout(core.LayoutPadded))
		start := time.Now()
		for i := 0; i < items; i += batch {
			for j := 0; j < batch; j++ {
				q.Enqueue(uint64(i + j))
			}
			for j := 0; j < batch; j++ {
				q.TryDequeue()
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(items)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func timeLineBatch(items, batch, rounds int) float64 {
	src := make([]uint64, batch)
	dst := make([]uint64, batch)
	for i := range src {
		src[i] = uint64(i)
	}
	best := 0.0
	for r := 0; r < rounds; r++ {
		q, _ := core.NewLineSPSC[uint64](1 << 14)
		start := time.Now()
		for i := 0; i < items; i += batch {
			q.EnqueueBatch(src)
			q.TryDequeueBatch(dst)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(items)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestLineBeatsScalarSPSC is the CI performance gate for the
// line-granular SPSC (BenchmarkLineSPSC is its benchmark face): at
// batch=64 the line queue must move elements at least 1.5x faster than
// the scalar SPSC, and its single-value ops must stay within 1.15x of
// the scalar singles — the staging overhead the line layout adds must
// not tax the unbatched path. Best-of-5 rounds on both sides keeps
// most scheduler noise out of the ratio, and because the 1.15x singles
// margin still sits near the noise floor of shared CI runners, a
// failing comparison is re-measured up to maxAttempts times before the
// gate fails: genuine regressions fail every attempt, while a single
// noisy round (a descheduled burst, a frequency transition) does not
// flake the build. The margins measured at authoring time (~8x at
// batch=64, singles faster than scalar) hold comfortably.
func TestLineBeatsScalarSPSC(t *testing.T) {
	if testing.Short() {
		t.Skip("performance gate; skipped in -short")
	}
	const (
		items       = 200_000
		rounds      = 5
		maxAttempts = 3
	)
	for attempt := 1; ; attempt++ {
		scalarSingle := timeScalarSingles(items, rounds)
		lineSingle := timeLineSingles(items, rounds)
		scalarBatch := timeScalarBatch(items, 64, rounds)
		lineBatch := timeLineBatch(items, 64, rounds)

		t.Logf("attempt %d: scalar/single %.2f ns/el, line/single %.2f ns/el", attempt, scalarSingle, lineSingle)
		t.Logf("attempt %d: scalar/batch=64 %.2f ns/el, line/batch=64 %.2f ns/el (%.2fx)",
			attempt, scalarBatch, lineBatch, scalarBatch/lineBatch)

		batchOK := lineBatch*1.5 <= scalarBatch
		singleOK := lineSingle <= scalarSingle*1.15
		if batchOK && singleOK {
			return
		}
		if attempt < maxAttempts {
			t.Logf("attempt %d missed a threshold; re-measuring", attempt)
			continue
		}
		if !batchOK {
			t.Errorf("line/batch=64 %.2f ns/el is not >=1.5x faster than scalar %.2f ns/el",
				lineBatch, scalarBatch)
		}
		if !singleOK {
			t.Errorf("line/single %.2f ns/el exceeds 1.15x scalar single %.2f ns/el",
				lineSingle, scalarSingle)
		}
		return
	}
}
