package ffq_test

import (
	"testing"

	"ffq"
)

// TestHotPathAllocFree is the dynamic half of the hotpath-alloc static
// check: every exported bounded-queue single-op hot path must run
// without heap allocation. Each probe pairs an enqueue with a dequeue
// so the queue stays at steady state across testing.AllocsPerRun's
// repetitions; batch probes reuse preallocated buffers, mirroring how
// a zero-alloc caller is expected to hold them.
func TestHotPathAllocFree(t *testing.T) {
	const cap = 64

	spsc, err := ffq.NewSPSC[int](cap)
	if err != nil {
		t.Fatal(err)
	}
	spmc, err := ffq.NewSPMC[int](cap)
	if err != nil {
		t.Fatal(err)
	}
	mpmc, err := ffq.NewMPMC[int](cap)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ffq.NewShardedMPMC[int](4, cap)
	if err != nil {
		t.Fatal(err)
	}
	line, err := ffq.NewLineSPSC[int](cap)
	if err != nil {
		t.Fatal(err)
	}
	handle, ok := sharded.AcquireProducer()
	if !ok {
		t.Fatal("AcquireProducer refused a handle on a fresh queue")
	}
	defer handle.Release()

	batch := make([]int, 8)
	for i := range batch {
		batch[i] = i
	}
	dst := make([]int, 8)

	probes := []struct {
		name string
		op   func()
	}{
		{"SPSC.Enqueue+Dequeue", func() {
			spsc.Enqueue(1)
			if _, ok := spsc.Dequeue(); !ok {
				t.Fatal("SPSC.Dequeue lost a value")
			}
		}},
		{"SPSC.TryEnqueue+TryDequeue", func() {
			if !spsc.TryEnqueue(1) {
				t.Fatal("SPSC.TryEnqueue refused on an empty queue")
			}
			if _, ok := spsc.TryDequeue(); !ok {
				t.Fatal("SPSC.TryDequeue lost a value")
			}
		}},
		{"SPMC.Enqueue+Dequeue", func() {
			spmc.Enqueue(1)
			if _, ok := spmc.Dequeue(); !ok {
				t.Fatal("SPMC.Dequeue lost a value")
			}
		}},
		{"SPMC.TryEnqueue+TryDequeue", func() {
			if !spmc.TryEnqueue(1) {
				t.Fatal("SPMC.TryEnqueue refused on an empty queue")
			}
			if _, ok := spmc.TryDequeue(); !ok {
				t.Fatal("SPMC.TryDequeue lost a value")
			}
		}},
		{"SPMC.EnqueueBatch+DequeueBatch", func() {
			spmc.EnqueueBatch(batch)
			if n, ok := spmc.DequeueBatch(dst); !ok || n != len(batch) {
				t.Fatalf("SPMC.DequeueBatch = %d, %v", n, ok)
			}
		}},
		{"SPMC.EnqueueBatch+TryDequeueBatch", func() {
			spmc.EnqueueBatch(batch)
			if n := spmc.TryDequeueBatch(dst); n != len(batch) {
				t.Fatalf("SPMC.TryDequeueBatch = %d", n)
			}
		}},
		{"MPMC.Enqueue+Dequeue", func() {
			mpmc.Enqueue(1)
			if _, ok := mpmc.Dequeue(); !ok {
				t.Fatal("MPMC.Dequeue lost a value")
			}
		}},
		{"MPMC.Enqueue+TryDequeue", func() {
			mpmc.Enqueue(1)
			if _, ok := mpmc.TryDequeue(); !ok {
				t.Fatal("MPMC.TryDequeue lost a value")
			}
		}},
		{"MPMC.EnqueueBatch+DequeueBatch", func() {
			mpmc.EnqueueBatch(batch)
			if n, ok := mpmc.DequeueBatch(dst); !ok || n != len(batch) {
				t.Fatalf("MPMC.DequeueBatch = %d, %v", n, ok)
			}
		}},
		{"ShardedMPMC.Enqueue+TryDequeue", func() {
			sharded.Enqueue(1)
			if _, ok := sharded.TryDequeue(); !ok {
				t.Fatal("ShardedMPMC.TryDequeue lost a value")
			}
		}},
		{"ShardedMPMC.Enqueue+Dequeue", func() {
			sharded.Enqueue(1)
			if _, ok := sharded.Dequeue(); !ok {
				t.Fatal("ShardedMPMC.Dequeue lost a value")
			}
		}},
		{"ProducerHandle.Enqueue+Dequeue", func() {
			handle.Enqueue(1)
			if _, ok := sharded.Dequeue(); !ok {
				t.Fatal("ShardedMPMC.Dequeue lost a handle-enqueued value")
			}
		}},
		{"ProducerHandle.TryEnqueue+TryDequeue", func() {
			if !handle.TryEnqueue(1) {
				t.Fatal("ProducerHandle.TryEnqueue refused on an empty lane")
			}
			if _, ok := sharded.TryDequeue(); !ok {
				t.Fatal("ShardedMPMC.TryDequeue lost a handle-enqueued value")
			}
		}},
		{"LineSPSC.Enqueue+Dequeue", func() {
			line.Enqueue(1)
			if _, ok := line.Dequeue(); !ok {
				t.Fatal("LineSPSC.Dequeue lost a value")
			}
		}},
		{"LineSPSC.TryEnqueue+TryDequeue", func() {
			if !line.TryEnqueue(1) {
				t.Fatal("LineSPSC.TryEnqueue refused on an empty queue")
			}
			if _, ok := line.TryDequeue(); !ok {
				t.Fatal("LineSPSC.TryDequeue lost a value")
			}
		}},
		{"LineSPSC.EnqueueBatch+DequeueBatch", func() {
			line.EnqueueBatch(batch)
			got := 0
			for got < len(batch) {
				n, ok := line.DequeueBatch(dst[got:])
				if !ok || n == 0 {
					t.Fatalf("LineSPSC.DequeueBatch drained only %d of %d", got, len(batch))
				}
				got += n
			}
		}},
		{"LineSPSC.EnqueueBatch+TryDequeueBatch", func() {
			line.EnqueueBatch(batch)
			got := 0
			for got < len(batch) {
				n := line.TryDequeueBatch(dst[got:])
				if n == 0 {
					t.Fatalf("LineSPSC.TryDequeueBatch drained only %d of %d", got, len(batch))
				}
				got += n
			}
		}},
		{"ProducerHandle.EnqueueBatch+TryDequeueBatch", func() {
			handle.EnqueueBatch(batch)
			got := 0
			for got < len(batch) {
				n := sharded.TryDequeueBatch(dst)
				if n == 0 {
					t.Fatalf("ShardedMPMC.TryDequeueBatch drained only %d of %d", got, len(batch))
				}
				got += n
			}
		}},
	}

	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(100, p.op); avg != 0 {
				t.Errorf("%s allocates %.2f times per op; hot paths must be allocation-free", p.name, avg)
			}
		})
	}
}
