package ffq

import "ffq/internal/core"

// LineVals is the number of values a LineSPSC ring cell carries: seven
// values plus one 8-byte sequence word fill exactly one 64-byte cache
// line for 8-byte payloads.
const LineVals = core.LineVals

// LineSPSC is a bounded FIFO queue for exactly one producer goroutine
// and exactly one consumer goroutine whose ring cells are whole cache
// lines holding LineVals values plus a single sequence word. Compared
// to SPSC, which synchronizes once per value, LineSPSC synchronizes
// once per publish call — a full EnqueueBatch line moves LineVals
// values per release store, and the consumer returns a drained line
// with one store — so batch throughput per element is a multiple of
// the scalar queue's. Single-value operations still publish eagerly
// (a value is visible the moment Enqueue returns) and stay within a
// few percent of SPSC.
//
// See the README's "Line SPSC & shared-memory transport" section and
// DESIGN.md §4.10 for the cell geometry and publish protocol.
type LineSPSC[T any] struct{ q *core.LineSPSC[T] }

// NewLineSPSC returns a line-granular SPSC queue holding at least
// capacity values (capacity >= 1; the ring rounds up to a power-of-two
// number of LineVals-value lines, so Cap may exceed capacity).
func NewLineSPSC[T any](capacity int, opts ...Option) (*LineSPSC[T], error) {
	q, err := core.NewLineSPSC[T](capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &LineSPSC[T]{q: q}, nil
}

// Enqueue inserts v at the tail, spinning while the ring is full.
// Producer goroutine only.
func (s *LineSPSC[T]) Enqueue(v T) { s.q.Enqueue(v) }

// TryEnqueue inserts v if the ring has space and reports whether it
// did. Producer goroutine only.
func (s *LineSPSC[T]) TryEnqueue(v T) bool { return s.q.TryEnqueue(v) }

// EnqueueBatch inserts every element of vs in order, publishing each
// filled line with a single release store. This is the fast path the
// cell geometry exists for. Producer goroutine only.
func (s *LineSPSC[T]) EnqueueBatch(vs []T) { s.q.EnqueueBatch(vs) }

// Dequeue removes the head value, blocking while the queue is empty;
// ok=false after Close once drained. Consumer goroutine only.
func (s *LineSPSC[T]) Dequeue() (v T, ok bool) { return s.q.Dequeue() }

// TryDequeue removes the head value if one is published. Consumer
// goroutine only.
func (s *LineSPSC[T]) TryDequeue() (v T, ok bool) { return s.q.TryDequeue() }

// DequeueBatch fills dst with up to len(dst) values, blocking until at
// least one is available; ok=false only once closed and drained. When
// the head line is the producer's active partial line it briefly
// stands off (temporal slipping) so the line can move whole. Consumer
// goroutine only.
func (s *LineSPSC[T]) DequeueBatch(dst []T) (n int, ok bool) { return s.q.DequeueBatch(dst) }

// TryDequeueBatch fills dst with whatever is published right now and
// returns the count, never blocking. Consumer goroutine only.
func (s *LineSPSC[T]) TryDequeueBatch(dst []T) int { return s.q.TryDequeueBatch(dst) }

// Close marks the queue closed (producer side, after the final
// Enqueue). A partial line already published stays dequeueable.
func (s *LineSPSC[T]) Close() { s.q.Close() }

// Len approximates the number of queued values; it advances once per
// operation call, so a batch appears all at once.
func (s *LineSPSC[T]) Len() int { return s.q.Len() }

// Cap returns the ring capacity in values (lines x LineVals).
func (s *LineSPSC[T]) Cap() int { return s.q.Cap() }

// Stats snapshots the queue's instrumentation counters.
func (s *LineSPSC[T]) Stats() Stats { return s.q.Stats() }
