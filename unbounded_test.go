package ffq_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"ffq"
)

func TestPublicUnbounded(t *testing.T) {
	q, err := ffq.NewUnbounded[int](ffq.WithSegmentSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if q.SegmentSize() != 8 {
		t.Fatalf("SegmentSize = %d", q.SegmentSize())
	}
	const consumers = 4
	const items = 10000 // 1250 segments of 8: grows and recycles heavily
	var sum atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return
				}
				sum.Add(int64(v))
			}
		}()
	}
	for i := 1; i <= items; i++ {
		q.Enqueue(i)
	}
	q.Close()
	wg.Wait()
	if want := int64(items) * (items + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	s := q.Stats()
	if s.SegsRetired < 100 {
		t.Fatalf("SegsRetired = %d: recycling not exercised", s.SegsRetired)
	}
	if s.SegsLive != s.SegsAllocated+s.SegsRecycled-s.SegsRetired {
		t.Fatalf("segment accounting inconsistent: %+v", s)
	}
}

// TestPublicUnboundedTryDequeue checks the non-blocking poll on both
// unbounded facades: empty polls reserve nothing (small segments force
// the poll across segment boundaries), and a full drain through
// TryDequeue alone delivers everything in order.
func TestPublicUnboundedTryDequeue(t *testing.T) {
	spmc, err := ffq.NewUnbounded[int](ffq.WithSegmentSize(8))
	if err != nil {
		t.Fatal(err)
	}
	mpmc, err := ffq.NewUnboundedMPMC[int](ffq.WithSegmentSize(8))
	if err != nil {
		t.Fatal(err)
	}
	type tryQueue interface {
		Enqueue(int)
		TryDequeue() (int, bool)
		Close()
	}
	for name, q := range map[string]tryQueue{"useg": spmc, "useg-mpmc": mpmc} {
		if v, ok := q.TryDequeue(); ok {
			t.Fatalf("%s: empty TryDequeue returned %d", name, v)
		}
		const items = 100 // 13 segments of 8: polls cross segment links
		for i := 1; i <= items; i++ {
			q.Enqueue(i)
		}
		for want := 1; want <= items; want++ {
			v, ok := q.TryDequeue()
			if !ok {
				t.Fatalf("%s: TryDequeue empty with %d outstanding", name, items-want+1)
			}
			if v != want {
				t.Fatalf("%s: got %d, want %d", name, v, want)
			}
		}
		q.Close()
		if v, ok := q.TryDequeue(); ok {
			t.Fatalf("%s: drained TryDequeue returned %d", name, v)
		}
	}
}

func TestPublicUnboundedMPMC(t *testing.T) {
	q, err := ffq.NewUnboundedMPMC[uint64](ffq.WithSegmentSize(16))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const perWorker = 5000
	var sum atomic.Uint64
	var prod, cons sync.WaitGroup
	for w := 0; w < workers; w++ {
		prod.Add(1)
		go func() {
			defer prod.Done()
			for i := 0; i < perWorker; i++ {
				q.Enqueue(uint64(i + 1))
			}
		}()
	}
	total := int64(workers * perWorker)
	var tickets atomic.Int64
	for c := 0; c < workers; c++ {
		cons.Add(1)
		go func() {
			defer cons.Done()
			for tickets.Add(1) <= total {
				v, ok := q.Dequeue()
				if !ok {
					t.Error("claimed rank reported dead")
					return
				}
				sum.Add(v)
			}
		}()
	}
	prod.Wait()
	cons.Wait()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after balanced ops", q.Len())
	}
	if want := uint64(workers) * perWorker * (perWorker + 1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	q.Close()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("drained closed queue returned ok")
	}
}

// TestPublicUnboundedBatch round-trips batches through both unbounded
// facades and checks the batch histogram lands in Stats.
func TestPublicUnboundedBatch(t *testing.T) {
	q, err := ffq.NewUnbounded[int](ffq.WithSegmentSize(8), ffq.WithInstrumentation())
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]int, 64)
	for i := range vs {
		vs[i] = i
	}
	q.EnqueueBatch(vs)
	dst := make([]int, 64)
	if n, ok := q.DequeueBatch(dst); !ok || n != 64 {
		t.Fatalf("DequeueBatch = %d,%v", n, ok)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("dst[%d] = %d", i, v)
		}
	}
	s := q.Stats()
	if s.Enqueues != 64 || s.Dequeues != 64 {
		t.Fatalf("ops: %+v", s)
	}
	if s.BatchCount != 2 || s.BatchSumItems != 128 {
		t.Fatalf("batch stats: %+v", s)
	}

	m, err := ffq.NewUnboundedMPMC[int](ffq.WithSegmentSize(8))
	if err != nil {
		t.Fatal(err)
	}
	m.EnqueueBatch(vs)
	if n, ok := m.DequeueBatch(dst); !ok || n != 64 {
		t.Fatalf("MPMC DequeueBatch = %d,%v", n, ok)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("MPMC dst[%d] = %d", i, v)
		}
	}
}

// TestPublicUnboundedGrowth: the producer runs 64 segments ahead with
// no consumer at all — the defining capability the bounded variants
// lack — and Segments tracks the growth.
func TestPublicUnboundedGrowth(t *testing.T) {
	q, err := ffq.NewUnbounded[int](ffq.WithSegmentSize(4))
	if err != nil {
		t.Fatal(err)
	}
	const items = 4 * 64
	for i := 0; i < items; i++ {
		q.Enqueue(i)
	}
	if got := q.Segments(); got < 60 {
		t.Fatalf("Segments = %d after a %d-segment burst", got, items/4)
	}
	for i := 0; i < items; i++ {
		if v, ok := q.Dequeue(); !ok || v != i {
			t.Fatalf("drain #%d = %d,%v", i, v, ok)
		}
	}
	if got := q.Segments(); got > 2 {
		t.Fatalf("Segments = %d after drain; retirement not keeping up", got)
	}
}

func TestPublicUnboundedValidation(t *testing.T) {
	if _, err := ffq.NewUnbounded[int](ffq.WithSegmentSize(12)); err == nil {
		t.Error("Unbounded: non-power-of-two segment size accepted")
	}
	if _, err := ffq.NewUnboundedMPMC[int](ffq.WithSegmentSize(5)); err == nil {
		t.Error("UnboundedMPMC: non-power-of-two segment size accepted")
	}
	q, err := ffq.NewUnbounded[int]()
	if err != nil {
		t.Fatal(err)
	}
	if q.SegmentSize() != ffq.DefaultSegmentSize {
		t.Fatalf("default SegmentSize = %d, want %d", q.SegmentSize(), ffq.DefaultSegmentSize)
	}
}
