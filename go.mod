module ffq

go 1.23
