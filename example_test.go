package ffq_test

import (
	"fmt"
	"sync"

	"ffq"
)

// The headline FFQ configuration: one producer, a pool of consumers.
func ExampleSPMC() {
	q, err := ffq.NewSPMC[int](64)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var received []int
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if !ok {
					return // closed and drained
				}
				mu.Lock()
				received = append(received, v)
				mu.Unlock()
			}
		}()
	}

	for i := 1; i <= 5; i++ {
		q.Enqueue(i * 10)
	}
	q.Close()
	wg.Wait()

	sum := 0
	for _, v := range received {
		sum += v
	}
	fmt.Println(len(received), sum)
	// Output: 5 150
}

// SPSC is the cheapest variant when there is exactly one consumer:
// TryDequeue polls without blocking.
func ExampleSPSC() {
	q, err := ffq.NewSPSC[string](16, ffq.WithLayout(ffq.LayoutPadded))
	if err != nil {
		panic(err)
	}
	q.Enqueue("a")
	q.Enqueue("b")

	for {
		v, ok := q.TryDequeue()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// a
	// b
}

// MPMC accepts concurrent producers; items from one producer keep
// their order.
func ExampleMPMC() {
	q, err := ffq.NewMPMC[int](32)
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				q.Enqueue(p*100 + i)
			}
		}(p)
	}
	wg.Wait()
	q.Close()

	sum := 0
	for {
		v, ok := q.Dequeue()
		if !ok {
			break
		}
		sum += v
	}
	fmt.Println(sum)
	// Output: 306
}
