package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ffq/internal/obs/expvarx"
)

// Broker scrape mode: instead of driving a local queue, ffq-top polls
// an ffqd /metrics endpoint, parses the Prometheus exposition with
// expvarx.Parse and renders the broker's counters plus a per-topic
// table (depth, subscribers, outstanding credit, delivery rates and
// mean batch size). Rates are deltas between consecutive scrapes.
// When the broker runs instrumented with latency armed, a second
// per-topic table shows end-to-end residence-time percentiles
// (ffqd_e2e_latency_ns), the topic queue's dequeue p999
// (ffq_op_latency_ns) and its stall-event count. Against a durable
// broker (-data-dir) a third table shows each topic's WAL: on-disk
// size, retained offset range, segment count, append rate, and the
// broker-wide fsync p99 (ffqd_wal_fsync_ns).
//
// -scrape also takes a comma-separated endpoint list — one per
// cluster node. All endpoints are polled each tick and the view
// becomes a cluster frame: a summary line per node plus a per-node ×
// per-partition table of every partitioned topic ("base@N" labels),
// each cell showing the node's local WAL head and its replication lag
// behind the most advanced copy of that partition. A node that fails
// a scrape renders as "down" for that tick instead of aborting.

// scrapeOnce fetches and parses one exposition.
func scrapeOnce(client *http.Client, url string) (*expvarx.SampleSet, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	samples, err := expvarx.Parse(resp.Body)
	if err != nil {
		return nil, err
	}
	return expvarx.NewSampleSet(samples), nil
}

// val looks a bare (unlabeled) sample up, defaulting to 0.
func val(ss *expvarx.SampleSet, name string) float64 {
	v, _ := ss.Value(name, nil)
	return v
}

// topicVal looks a {topic=...} sample up, defaulting to 0.
func topicVal(ss *expvarx.SampleSet, name, topic string) float64 {
	v, _ := ss.Value(name, map[string]string{"topic": topic})
	return v
}

// topicQueueVal finds the queue-level family sample whose registered
// queue name ends in "/topic/<topic>" (the broker registers topic
// queues as "<prefix>/topic/<name>", and the prefix is the broker's
// business, not ours).
func topicQueueVal(ss *expvarx.SampleSet, name, topic string) float64 {
	for _, q := range ss.LabelValues(name, "queue") {
		if strings.HasSuffix(q, "/topic/"+topic) {
			v, _ := ss.Value(name, map[string]string{"queue": q})
			return v
		}
	}
	return 0
}

// histCol renders a histogram quantile as a duration column, "-" when
// the family (or the series) is absent from the exposition.
func histCol(ss *expvarx.SampleSet, name string, labels map[string]string, q float64) string {
	v, ok := ss.HistQuantile(name, labels, q)
	if !ok {
		return "-"
	}
	return time.Duration(int64(v)).Round(time.Microsecond).String()
}

// topicQueueLabels resolves the topic's queue-level label set for a
// histogram family, matching the "/topic/<name>" registration suffix
// the same way topicQueueVal does.
func topicQueueLabels(ss *expvarx.SampleSet, name, topic, op string) map[string]string {
	for _, q := range ss.LabelValues(name+"_bucket", "queue") {
		if strings.HasSuffix(q, "/topic/"+topic) {
			return map[string]string{"queue": q, "op": op}
		}
	}
	return nil
}

// normalizeScrapeURL expands a bare host:port into a full /metrics URL.
func normalizeScrapeURL(url string) string {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/metrics"
	}
	return url
}

// scrapeAll polls every endpoint concurrently; a failed endpoint
// yields a nil SampleSet in its slot (rendered as down) rather than
// failing the whole tick.
func scrapeAll(client *http.Client, urls []string) []*expvarx.SampleSet {
	out := make([]*expvarx.SampleSet, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			ss, err := scrapeOnce(client, url)
			if err == nil {
				out[i] = ss
			}
		}(i, url)
	}
	wg.Wait()
	return out
}

// runScrape is the -scrape main loop. It renders one frame per
// interval until the duration elapses or a signal arrives. urlList
// may name several endpoints (comma-separated); more than one turns
// the frame into the cluster view.
func runScrape(urlList string, interval, duration time.Duration, plain bool) error {
	var urls []string
	for _, u := range strings.Split(urlList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, normalizeScrapeURL(u))
		}
	}
	if len(urls) == 0 {
		return fmt.Errorf("scrape: no endpoints")
	}
	client := &http.Client{Timeout: 5 * time.Second}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	start := time.Now()
	prev := scrapeAll(client, urls)
	if len(urls) == 1 && prev[0] == nil {
		// Single-endpoint mode keeps the old contract: an unreachable
		// broker is a startup error, not an empty frame.
		_, err := scrapeOnce(client, urls[0])
		return err
	}
	prevAt := start
	for {
		select {
		case <-sig:
			return nil
		case <-deadline:
			return nil
		case now := <-ticker.C:
			cur := scrapeAll(client, urls)
			if len(urls) == 1 {
				if cur[0] == nil {
					fmt.Fprintln(os.Stderr, "ffq-top: scrape:", urls[0], "unreachable")
					continue
				}
				if prev[0] == nil {
					prev[0] = cur[0]
				}
				renderScrape(os.Stdout, plain, urls[0], now.Sub(start), cur[0], prev[0], now.Sub(prevAt))
			} else {
				renderClusterScrape(os.Stdout, plain, urls, now.Sub(start), cur, prev, now.Sub(prevAt))
			}
			prev, prevAt = cur, now
		}
	}
}

// renderScrape draws one broker frame (or appends one line with
// -plain).
func renderScrape(w *os.File, plain bool, url string, elapsed time.Duration,
	cur, prev *expvarx.SampleSet, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rate := func(name string) float64 {
		return (val(cur, name) - val(prev, name)) / secs
	}

	if plain {
		fmt.Fprintf(w, "t=%-8s conns=%-4.0f topics=%-4.0f in/s=%-10.0f out/s=%-10.0f acks/s=%-8.0f dropped=%.0f",
			elapsed.Round(time.Second),
			val(cur, "ffqd_connections"), val(cur, "ffqd_topics"),
			rate("ffqd_messages_in_total"), rate("ffqd_messages_out_total"),
			rate("ffqd_acks_total"), val(cur, "ffqd_messages_dropped_total"))
		// Worst-topic residence-time tail, when the broker exports it.
		var worst float64
		for _, tp := range cur.LabelValues("ffqd_e2e_latency_ns_bucket", "topic") {
			if v, ok := cur.HistQuantile("ffqd_e2e_latency_ns", map[string]string{"topic": tp}, 0.999); ok && v > worst {
				worst = v
			}
		}
		if worst > 0 {
			fmt.Fprintf(w, " e2e-p999=%s", time.Duration(int64(worst)).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
		return
	}

	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	fmt.Fprintf(&b, "ffq-top — broker %s — up %s\n\n", url, elapsed.Round(time.Second))
	fmt.Fprintf(&b, "  connections %8.0f   (total %.0f)\n",
		val(cur, "ffqd_connections"), val(cur, "ffqd_connections_total"))
	fmt.Fprintf(&b, "  msgs in/s   %8.0f   (total %.0f, %.0f PRODUCE frames)\n",
		rate("ffqd_messages_in_total"), val(cur, "ffqd_messages_in_total"), val(cur, "ffqd_produce_frames_total"))
	fmt.Fprintf(&b, "  msgs out/s  %8.0f   (total %.0f, %.0f DELIVER frames)\n",
		rate("ffqd_messages_out_total"), val(cur, "ffqd_messages_out_total"), val(cur, "ffqd_deliver_frames_total"))
	fmt.Fprintf(&b, "  acks/s      %8.0f   (total %.0f)\n",
		rate("ffqd_acks_total"), val(cur, "ffqd_acks_total"))
	if d := val(cur, "ffqd_messages_dropped_total"); d > 0 {
		fmt.Fprintf(&b, "  dropped     %8.0f   (PRODUCE after shutdown cutoff)\n", d)
	}
	if e := val(cur, "ffqd_protocol_errors_total"); e > 0 {
		fmt.Fprintf(&b, "  proto errs  %8.0f\n", e)
	}

	topics := cur.LabelValues("ffqd_topic_depth", "topic")
	sort.Strings(topics)
	if len(topics) > 0 {
		fmt.Fprintf(&b, "\n  %-20s %10s %6s %8s %10s %10s %10s\n",
			"TOPIC", "DEPTH", "SUBS", "CREDIT", "IN/S", "OUT/S", "BATCH")
		for _, tp := range topics {
			inRate := (topicQueueVal(cur, "ffq_enqueues_total", tp) - topicQueueVal(prev, "ffq_enqueues_total", tp)) / secs
			outRate := (topicQueueVal(cur, "ffq_dequeues_total", tp) - topicQueueVal(prev, "ffq_dequeues_total", tp)) / secs
			// Mean items per EnqueueBatch over the last interval; the
			// lifetime mean hides recent behavior.
			dSum := topicQueueVal(cur, "ffq_batch_items_sum", tp) - topicQueueVal(prev, "ffq_batch_items_sum", tp)
			dCount := topicQueueVal(cur, "ffq_batch_items_count", tp) - topicQueueVal(prev, "ffq_batch_items_count", tp)
			batch := "-"
			if dCount > 0 {
				batch = fmt.Sprintf("%.1f", dSum/dCount)
			}
			fmt.Fprintf(&b, "  %-20s %10.0f %6.0f %8.0f %10.0f %10.0f %10s\n",
				tp,
				topicVal(cur, "ffqd_topic_depth", tp),
				topicVal(cur, "ffqd_topic_subscribers", tp),
				topicVal(cur, "ffqd_topic_credit", tp),
				inRate, outRate, batch)
		}
	}

	// Durable topics: the WAL gauge families appear only when the broker
	// runs with -data-dir. Rendered per topic: on-disk size, retained
	// offset range, segment count and append rate; the fsync latency
	// histogram is broker-wide, shown in the header line.
	walTopics := cur.LabelValues("ffqd_wal_bytes", "topic")
	sort.Strings(walTopics)
	if len(walTopics) > 0 {
		fsyncP99 := histCol(cur, "ffqd_wal_fsync_ns", nil, 0.99)
		fmt.Fprintf(&b, "\n  durable topics (fsync p99 %s)\n", fsyncP99)
		fmt.Fprintf(&b, "  %-20s %10s %12s %12s %6s %10s\n",
			"TOPIC", "WAL-MB", "OLDEST", "NEXT", "SEGS", "APPEND/S")
		for _, tp := range walTopics {
			appendRate := (topicVal(cur, "ffqd_wal_next_offset", tp) - topicVal(prev, "ffqd_wal_next_offset", tp)) / secs
			fmt.Fprintf(&b, "  %-20s %10.2f %12.0f %12.0f %6.0f %10.0f\n",
				tp,
				topicVal(cur, "ffqd_wal_bytes", tp)/(1<<20),
				topicVal(cur, "ffqd_wal_oldest_offset", tp),
				topicVal(cur, "ffqd_wal_next_offset", tp),
				topicVal(cur, "ffqd_wal_segments", tp),
				appendRate)
		}
	}

	// Latency families appear only when the broker runs instrumented
	// with latency armed; render the per-topic percentile table when the
	// end-to-end histogram (PRODUCE ingress to DELIVER encode) or the
	// per-op dequeue histogram of the topic queue is present.
	latTopics := cur.LabelValues("ffqd_e2e_latency_ns_bucket", "topic")
	sort.Strings(latTopics)
	if len(latTopics) > 0 {
		fmt.Fprintf(&b, "\n  %-20s %10s %10s %10s %10s %10s\n",
			"TOPIC", "E2E-P50", "E2E-P99", "E2E-P999", "DEQ-P999", "STALLS")
		for _, tp := range latTopics {
			e2e := map[string]string{"topic": tp}
			deq := "-"
			if ql := topicQueueLabels(cur, "ffq_op_latency_ns", tp, "dequeue"); ql != nil {
				deq = histCol(cur, "ffq_op_latency_ns", ql, 0.999)
			}
			stalls := "-"
			if len(cur.LabelValues("ffq_stall_events_total", "queue")) > 0 {
				stalls = fmt.Sprintf("%.0f", topicQueueVal(cur, "ffq_stall_events_total", tp))
			}
			fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s\n", tp,
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.5),
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.99),
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.999),
				deq, stalls)
		}
	}
	fmt.Fprintf(&b, "\n(ctrl-c to stop)\n")
	w.WriteString(b.String())
}

// endpointLabel shortens a scrape URL to its host:port for column
// headers.
func endpointLabel(url string) string {
	if i := strings.Index(url, "://"); i >= 0 {
		url = url[i+3:]
	}
	if i := strings.Index(url, "/"); i >= 0 {
		url = url[:i]
	}
	return url
}

// splitPartTopic parses a partitioned display label "base@N". The
// broker only uses '@' in partitioned names (DirName escapes it
// elsewhere), so a trailing integer after the last '@' is decisive.
func splitPartTopic(label string) (base string, part uint64, ok bool) {
	i := strings.LastIndex(label, "@")
	if i < 0 {
		return "", 0, false
	}
	part, err := strconv.ParseUint(label[i+1:], 10, 32)
	if err != nil {
		return "", 0, false
	}
	return label[:i], part, true
}

// partitionRows collects every partitioned topic label seen on any
// node, sorted by base name then partition index.
func partitionRows(sets []*expvarx.SampleSet) []string {
	seen := map[string]bool{}
	var rows []string
	for _, ss := range sets {
		if ss == nil {
			continue
		}
		for _, fam := range []string{"ffqd_topic_depth", "ffqd_wal_next_offset"} {
			for _, label := range ss.LabelValues(fam, "topic") {
				if _, _, ok := splitPartTopic(label); ok && !seen[label] {
					seen[label] = true
					rows = append(rows, label)
				}
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		bi, pi, _ := splitPartTopic(rows[i])
		bj, pj, _ := splitPartTopic(rows[j])
		if bi != bj {
			return bi < bj
		}
		return pi < pj
	})
	return rows
}

// renderClusterScrape draws one multi-node frame: a summary line per
// node and a per-node × per-partition table. Each cell is the node's
// live depth and its replication lag — the distance between its local
// WAL head and the most advanced copy of that partition anywhere in
// the cluster — so a healthy replica reads d0 l0 and a follower
// catching up shows its backlog directly.
func renderClusterScrape(w *os.File, plain bool, urls []string, elapsed time.Duration,
	cur, prev []*expvarx.SampleSet, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rows := partitionRows(cur)

	// head[row][node] = local WAL next offset; maxHead[row] = the most
	// advanced copy. Lag is only meaningful against nodes that hold
	// the partition at all.
	type cell struct {
		held  bool
		depth float64
		head  float64
	}
	grid := make([][]cell, len(rows))
	maxHead := make([]float64, len(rows))
	for ri, row := range rows {
		grid[ri] = make([]cell, len(cur))
		for ni, ss := range cur {
			if ss == nil {
				continue
			}
			head, okHead := ss.Value("ffqd_wal_next_offset", map[string]string{"topic": row})
			depth, okDepth := ss.Value("ffqd_topic_depth", map[string]string{"topic": row})
			if !okHead && !okDepth {
				continue
			}
			grid[ri][ni] = cell{held: true, depth: depth, head: head}
			if head > maxHead[ri] {
				maxHead[ri] = head
			}
		}
	}

	if plain {
		up, in, out := 0, 0.0, 0.0
		var maxLag float64
		for ni, ss := range cur {
			if ss == nil {
				continue
			}
			up++
			if prev[ni] != nil {
				in += (val(ss, "ffqd_messages_in_total") - val(prev[ni], "ffqd_messages_in_total")) / secs
				out += (val(ss, "ffqd_messages_out_total") - val(prev[ni], "ffqd_messages_out_total")) / secs
			}
		}
		for ri := range rows {
			for _, c := range grid[ri] {
				if c.held && maxHead[ri]-c.head > maxLag {
					maxLag = maxHead[ri] - c.head
				}
			}
		}
		fmt.Fprintf(w, "t=%-8s nodes=%d/%d parts=%-4d in/s=%-10.0f out/s=%-10.0f maxlag=%.0f\n",
			elapsed.Round(time.Second), up, len(cur), len(rows), in, out, maxLag)
		return
	}

	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	fmt.Fprintf(&b, "ffq-top — cluster, %d nodes — up %s\n\n", len(urls), elapsed.Round(time.Second))
	fmt.Fprintf(&b, "  %-22s %8s %7s %10s %10s %8s\n", "NODE", "CONNS", "TOPICS", "IN/S", "OUT/S", "ACKS/S")
	for ni, ss := range cur {
		name := endpointLabel(urls[ni])
		if ss == nil {
			fmt.Fprintf(&b, "  %-22s %s\n", name, "down")
			continue
		}
		rate := func(fam string) float64 {
			if prev[ni] == nil {
				return 0
			}
			return (val(ss, fam) - val(prev[ni], fam)) / secs
		}
		fmt.Fprintf(&b, "  %-22s %8.0f %7.0f %10.0f %10.0f %8.0f\n",
			name, val(ss, "ffqd_connections"), val(ss, "ffqd_topics"),
			rate("ffqd_messages_in_total"), rate("ffqd_messages_out_total"), rate("ffqd_acks_total"))
	}

	if len(rows) > 0 {
		fmt.Fprintf(&b, "\n  partitions (cells: d<depth> l<lag>; lag = most advanced WAL head minus local)\n")
		fmt.Fprintf(&b, "  %-24s", "TOPIC@PART")
		for _, url := range urls {
			fmt.Fprintf(&b, " %14s", endpointLabel(url))
		}
		b.WriteString("\n")
		for ri, row := range rows {
			fmt.Fprintf(&b, "  %-24s", row)
			for ni := range cur {
				switch {
				case cur[ni] == nil:
					fmt.Fprintf(&b, " %14s", "down")
				case !grid[ri][ni].held:
					fmt.Fprintf(&b, " %14s", "-")
				default:
					c := grid[ri][ni]
					fmt.Fprintf(&b, " %14s", fmt.Sprintf("d%.0f l%.0f", c.depth, maxHead[ri]-c.head))
				}
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "\n(ctrl-c to stop)\n")
	w.WriteString(b.String())
}
