package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"ffq/internal/obs/expvarx"
)

// Broker scrape mode: instead of driving a local queue, ffq-top polls
// an ffqd /metrics endpoint, parses the Prometheus exposition with
// expvarx.Parse and renders the broker's counters plus a per-topic
// table (depth, subscribers, outstanding credit, delivery rates and
// mean batch size). Rates are deltas between consecutive scrapes.
// When the broker runs instrumented with latency armed, a second
// per-topic table shows end-to-end residence-time percentiles
// (ffqd_e2e_latency_ns), the topic queue's dequeue p999
// (ffq_op_latency_ns) and its stall-event count. Against a durable
// broker (-data-dir) a third table shows each topic's WAL: on-disk
// size, retained offset range, segment count, append rate, and the
// broker-wide fsync p99 (ffqd_wal_fsync_ns).

// scrapeOnce fetches and parses one exposition.
func scrapeOnce(client *http.Client, url string) (*expvarx.SampleSet, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	samples, err := expvarx.Parse(resp.Body)
	if err != nil {
		return nil, err
	}
	return expvarx.NewSampleSet(samples), nil
}

// val looks a bare (unlabeled) sample up, defaulting to 0.
func val(ss *expvarx.SampleSet, name string) float64 {
	v, _ := ss.Value(name, nil)
	return v
}

// topicVal looks a {topic=...} sample up, defaulting to 0.
func topicVal(ss *expvarx.SampleSet, name, topic string) float64 {
	v, _ := ss.Value(name, map[string]string{"topic": topic})
	return v
}

// topicQueueVal finds the queue-level family sample whose registered
// queue name ends in "/topic/<topic>" (the broker registers topic
// queues as "<prefix>/topic/<name>", and the prefix is the broker's
// business, not ours).
func topicQueueVal(ss *expvarx.SampleSet, name, topic string) float64 {
	for _, q := range ss.LabelValues(name, "queue") {
		if strings.HasSuffix(q, "/topic/"+topic) {
			v, _ := ss.Value(name, map[string]string{"queue": q})
			return v
		}
	}
	return 0
}

// histCol renders a histogram quantile as a duration column, "-" when
// the family (or the series) is absent from the exposition.
func histCol(ss *expvarx.SampleSet, name string, labels map[string]string, q float64) string {
	v, ok := ss.HistQuantile(name, labels, q)
	if !ok {
		return "-"
	}
	return time.Duration(int64(v)).Round(time.Microsecond).String()
}

// topicQueueLabels resolves the topic's queue-level label set for a
// histogram family, matching the "/topic/<name>" registration suffix
// the same way topicQueueVal does.
func topicQueueLabels(ss *expvarx.SampleSet, name, topic, op string) map[string]string {
	for _, q := range ss.LabelValues(name+"_bucket", "queue") {
		if strings.HasSuffix(q, "/topic/"+topic) {
			return map[string]string{"queue": q, "op": op}
		}
	}
	return nil
}

// runScrape is the -scrape main loop. It renders one frame per
// interval until the duration elapses or a signal arrives.
func runScrape(url string, interval, duration time.Duration, plain bool) error {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url[strings.Index(url, "://")+3:], "/") {
		url += "/metrics"
	}
	client := &http.Client{Timeout: 5 * time.Second}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if duration > 0 {
		deadline = time.After(duration)
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	start := time.Now()
	prev, err := scrapeOnce(client, url)
	if err != nil {
		return err
	}
	prevAt := start
	for {
		select {
		case <-sig:
			return nil
		case <-deadline:
			return nil
		case now := <-ticker.C:
			cur, err := scrapeOnce(client, url)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ffq-top: scrape:", err)
				continue
			}
			renderScrape(os.Stdout, plain, url, now.Sub(start), cur, prev, now.Sub(prevAt))
			prev, prevAt = cur, now
		}
	}
}

// renderScrape draws one broker frame (or appends one line with
// -plain).
func renderScrape(w *os.File, plain bool, url string, elapsed time.Duration,
	cur, prev *expvarx.SampleSet, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	rate := func(name string) float64 {
		return (val(cur, name) - val(prev, name)) / secs
	}

	if plain {
		fmt.Fprintf(w, "t=%-8s conns=%-4.0f topics=%-4.0f in/s=%-10.0f out/s=%-10.0f acks/s=%-8.0f dropped=%.0f",
			elapsed.Round(time.Second),
			val(cur, "ffqd_connections"), val(cur, "ffqd_topics"),
			rate("ffqd_messages_in_total"), rate("ffqd_messages_out_total"),
			rate("ffqd_acks_total"), val(cur, "ffqd_messages_dropped_total"))
		// Worst-topic residence-time tail, when the broker exports it.
		var worst float64
		for _, tp := range cur.LabelValues("ffqd_e2e_latency_ns_bucket", "topic") {
			if v, ok := cur.HistQuantile("ffqd_e2e_latency_ns", map[string]string{"topic": tp}, 0.999); ok && v > worst {
				worst = v
			}
		}
		if worst > 0 {
			fmt.Fprintf(w, " e2e-p999=%s", time.Duration(int64(worst)).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
		return
	}

	var b strings.Builder
	b.WriteString("\x1b[2J\x1b[H")
	fmt.Fprintf(&b, "ffq-top — broker %s — up %s\n\n", url, elapsed.Round(time.Second))
	fmt.Fprintf(&b, "  connections %8.0f   (total %.0f)\n",
		val(cur, "ffqd_connections"), val(cur, "ffqd_connections_total"))
	fmt.Fprintf(&b, "  msgs in/s   %8.0f   (total %.0f, %.0f PRODUCE frames)\n",
		rate("ffqd_messages_in_total"), val(cur, "ffqd_messages_in_total"), val(cur, "ffqd_produce_frames_total"))
	fmt.Fprintf(&b, "  msgs out/s  %8.0f   (total %.0f, %.0f DELIVER frames)\n",
		rate("ffqd_messages_out_total"), val(cur, "ffqd_messages_out_total"), val(cur, "ffqd_deliver_frames_total"))
	fmt.Fprintf(&b, "  acks/s      %8.0f   (total %.0f)\n",
		rate("ffqd_acks_total"), val(cur, "ffqd_acks_total"))
	if d := val(cur, "ffqd_messages_dropped_total"); d > 0 {
		fmt.Fprintf(&b, "  dropped     %8.0f   (PRODUCE after shutdown cutoff)\n", d)
	}
	if e := val(cur, "ffqd_protocol_errors_total"); e > 0 {
		fmt.Fprintf(&b, "  proto errs  %8.0f\n", e)
	}

	topics := cur.LabelValues("ffqd_topic_depth", "topic")
	sort.Strings(topics)
	if len(topics) > 0 {
		fmt.Fprintf(&b, "\n  %-20s %10s %6s %8s %10s %10s %10s\n",
			"TOPIC", "DEPTH", "SUBS", "CREDIT", "IN/S", "OUT/S", "BATCH")
		for _, tp := range topics {
			inRate := (topicQueueVal(cur, "ffq_enqueues_total", tp) - topicQueueVal(prev, "ffq_enqueues_total", tp)) / secs
			outRate := (topicQueueVal(cur, "ffq_dequeues_total", tp) - topicQueueVal(prev, "ffq_dequeues_total", tp)) / secs
			// Mean items per EnqueueBatch over the last interval; the
			// lifetime mean hides recent behavior.
			dSum := topicQueueVal(cur, "ffq_batch_items_sum", tp) - topicQueueVal(prev, "ffq_batch_items_sum", tp)
			dCount := topicQueueVal(cur, "ffq_batch_items_count", tp) - topicQueueVal(prev, "ffq_batch_items_count", tp)
			batch := "-"
			if dCount > 0 {
				batch = fmt.Sprintf("%.1f", dSum/dCount)
			}
			fmt.Fprintf(&b, "  %-20s %10.0f %6.0f %8.0f %10.0f %10.0f %10s\n",
				tp,
				topicVal(cur, "ffqd_topic_depth", tp),
				topicVal(cur, "ffqd_topic_subscribers", tp),
				topicVal(cur, "ffqd_topic_credit", tp),
				inRate, outRate, batch)
		}
	}

	// Durable topics: the WAL gauge families appear only when the broker
	// runs with -data-dir. Rendered per topic: on-disk size, retained
	// offset range, segment count and append rate; the fsync latency
	// histogram is broker-wide, shown in the header line.
	walTopics := cur.LabelValues("ffqd_wal_bytes", "topic")
	sort.Strings(walTopics)
	if len(walTopics) > 0 {
		fsyncP99 := histCol(cur, "ffqd_wal_fsync_ns", nil, 0.99)
		fmt.Fprintf(&b, "\n  durable topics (fsync p99 %s)\n", fsyncP99)
		fmt.Fprintf(&b, "  %-20s %10s %12s %12s %6s %10s\n",
			"TOPIC", "WAL-MB", "OLDEST", "NEXT", "SEGS", "APPEND/S")
		for _, tp := range walTopics {
			appendRate := (topicVal(cur, "ffqd_wal_next_offset", tp) - topicVal(prev, "ffqd_wal_next_offset", tp)) / secs
			fmt.Fprintf(&b, "  %-20s %10.2f %12.0f %12.0f %6.0f %10.0f\n",
				tp,
				topicVal(cur, "ffqd_wal_bytes", tp)/(1<<20),
				topicVal(cur, "ffqd_wal_oldest_offset", tp),
				topicVal(cur, "ffqd_wal_next_offset", tp),
				topicVal(cur, "ffqd_wal_segments", tp),
				appendRate)
		}
	}

	// Latency families appear only when the broker runs instrumented
	// with latency armed; render the per-topic percentile table when the
	// end-to-end histogram (PRODUCE ingress to DELIVER encode) or the
	// per-op dequeue histogram of the topic queue is present.
	latTopics := cur.LabelValues("ffqd_e2e_latency_ns_bucket", "topic")
	sort.Strings(latTopics)
	if len(latTopics) > 0 {
		fmt.Fprintf(&b, "\n  %-20s %10s %10s %10s %10s %10s\n",
			"TOPIC", "E2E-P50", "E2E-P99", "E2E-P999", "DEQ-P999", "STALLS")
		for _, tp := range latTopics {
			e2e := map[string]string{"topic": tp}
			deq := "-"
			if ql := topicQueueLabels(cur, "ffq_op_latency_ns", tp, "dequeue"); ql != nil {
				deq = histCol(cur, "ffq_op_latency_ns", ql, 0.999)
			}
			stalls := "-"
			if len(cur.LabelValues("ffq_stall_events_total", "queue")) > 0 {
				stalls = fmt.Sprintf("%.0f", topicQueueVal(cur, "ffq_stall_events_total", tp))
			}
			fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s %10s\n", tp,
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.5),
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.99),
				histCol(cur, "ffqd_e2e_latency_ns", e2e, 0.999),
				deq, stalls)
		}
	}
	fmt.Fprintf(&b, "\n(ctrl-c to stop)\n")
	w.WriteString(b.String())
}
