package main

import (
	"reflect"
	"strings"
	"testing"

	"ffq/internal/obs/expvarx"
)

func parseSet(t *testing.T, text string) *expvarx.SampleSet {
	t.Helper()
	samples, err := expvarx.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return expvarx.NewSampleSet(samples)
}

func TestSplitPartTopic(t *testing.T) {
	cases := []struct {
		label string
		base  string
		part  uint64
		ok    bool
	}{
		{"orders@3", "orders", 3, true},
		{"orders@0", "orders", 0, true},
		{"orders", "", 0, false},
		{"orders@", "", 0, false},
		{"orders@x", "", 0, false},
		// A base that itself carries an '@' splits at the last one.
		{"a@2@7", "a@2", 7, true},
	}
	for _, c := range cases {
		base, part, ok := splitPartTopic(c.label)
		if base != c.base || part != c.part || ok != c.ok {
			t.Errorf("splitPartTopic(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.label, base, part, ok, c.base, c.part, c.ok)
		}
	}
}

// TestPartitionRows checks the cluster table's row set: partitioned
// labels from every reachable node, deduplicated, base-then-numeric
// order (orders@10 sorts after orders@2), unpartitioned topics and
// down nodes ignored.
func TestPartitionRows(t *testing.T) {
	n1 := parseSet(t, `
ffqd_topic_depth{topic="orders@2"} 5
ffqd_topic_depth{topic="plain"} 1
ffqd_wal_next_offset{topic="orders@10"} 100
`)
	n2 := parseSet(t, `
ffqd_topic_depth{topic="orders@2"} 0
ffqd_topic_depth{topic="audit@0"} 3
`)
	rows := partitionRows([]*expvarx.SampleSet{n1, nil, n2})
	want := []string{"audit@0", "orders@2", "orders@10"}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("partitionRows = %v, want %v", rows, want)
	}
}

func TestEndpointLabel(t *testing.T) {
	for in, want := range map[string]string{
		"http://n1:9077/metrics": "n1:9077",
		"https://host:1/x/y":     "host:1",
		"n2:9077":                "n2:9077",
	} {
		if got := endpointLabel(in); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeScrapeURL(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:9077":         "http://localhost:9077/metrics",
		"http://h:1":             "http://h:1/metrics",
		"http://h:1/custom":      "http://h:1/custom",
		"https://h:9077/metrics": "https://h:9077/metrics",
	} {
		if got := normalizeScrapeURL(in); got != want {
			t.Errorf("normalizeScrapeURL(%q) = %q, want %q", in, got, want)
		}
	}
}
