// Command ffq-top runs a configurable produce/consume workload on an
// instrumented FFQ queue and renders a refreshing terminal view of its
// live internals: depth, enqueue/dequeue rates, spin ratios, scheduler
// yields, gap creation/skip counts and the blocking-wait histogram —
// the quantities behind the paper's evaluation (Figures 2-8), live.
//
// Usage:
//
//	ffq-top                                  # spmc, 4 consumers, 1024 slots
//	ffq-top -variant mpmc -producers 4 -consumers 2 -cap 64 \
//	        -consumer-delay 2us              # small queue + slow consumers = gaps
//	ffq-top -http :8077                      # also serve /metrics (Prometheus)
//	                                         # and /debug/vars (expvar)
//	ffq-top -yield-threshold 1               # exaggerate scheduler yields
//	ffq-top -variant unbounded -cap 64 \
//	        -producer-delay 200ns            # segmented queue: -cap is the
//	                                         # segment size; watch the live
//	                                         # segment/recycling counters
//	ffq-top -variant sharded -producers 4 \
//	        -consumers 2 -cap 256            # per-producer FFQ^s lanes:
//	                                         # -cap is the per-lane depth;
//	                                         # the view and /metrics gain
//	                                         # per-lane depths
//	ffq-top -latency                         # per-op latency percentiles
//	                                         # (p50/p99/p999/max) per frame
//	ffq-top -latency -stall-threshold 1ms \
//	        -consumer-delay 2ms              # arm the stall watchdog; waits
//	                                         # past the threshold appear as
//	                                         # timestamped stall events
//
// The unbounded variants have no backpressure: if consumers fall
// behind, the segment chain (and memory) grows without bound — use
// -producer-delay to throttle when demonstrating them.
//
// The terminal view refreshes in place every -interval. With -plain
// (or when stdout is not a terminal) it appends one summary line per
// tick instead, suitable for piping. The run stops after -duration
// (0 = until interrupted).
//
// With -scrape ffq-top drives no workload at all: it polls a running
// ffqd broker's /metrics endpoint instead and renders the broker's
// connection and message counters plus a per-topic table — depth,
// subscribers, outstanding credit, enqueue/dequeue rates and the mean
// EnqueueBatch size over the last interval:
//
//	ffq-top -scrape localhost:9077           # same as http://localhost:9077/metrics
//	ffq-top -scrape http://host:9077/metrics -interval 2s -plain
//
// Against a cluster, -scrape takes every node's metrics endpoint at
// once (comma-separated) and renders a per-node summary plus a
// per-node × per-partition table: each partitioned topic ("base@N")
// shows its live depth and replication lag — local WAL head versus
// the most advanced copy in the cluster — on every node holding it:
//
//	ffq-top -scrape n1:9077,n2:9077,n3:9077
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ffq/internal/core"
	"ffq/internal/obs"
	"ffq/internal/obs/expvarx"
	"ffq/internal/segq"
)

// queue adapts the core variants behind one face.
type queue interface {
	enqueue(v uint64)
	dequeue() (uint64, bool)
	close()
	len() int
	stats() obs.Stats
}

// laneQueue is the extra face of the sharded variant: producers take
// an exclusive wait-free lane and the live view gains per-lane depths.
type laneQueue interface {
	producer() (enq func(uint64), release func())
	laneLens() []int
}

type spscQ struct{ q *core.SPSC[uint64] }

func (s spscQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spscQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spscQ) close()                  { s.q.Close() }
func (s spscQ) len() int                { return s.q.Len() }
func (s spscQ) stats() obs.Stats        { return s.q.Stats() }

type spmcQ struct{ q *core.SPMC[uint64] }

func (s spmcQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s spmcQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s spmcQ) close()                  { s.q.Close() }
func (s spmcQ) len() int                { return s.q.Len() }
func (s spmcQ) stats() obs.Stats        { return s.q.Stats() }

type mpmcQ struct{ q *core.MPMC[uint64] }

func (s mpmcQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s mpmcQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s mpmcQ) close()                  { s.q.Close() }
func (s mpmcQ) len() int                { return s.q.Len() }
func (s mpmcQ) stats() obs.Stats        { return s.q.Stats() }

type shardedQ struct{ q *core.Sharded[uint64] }

// enqueue is the shared-lane fallback path; producer goroutines use
// producer() for an exclusive lane instead.
func (s shardedQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s shardedQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s shardedQ) close()                  { s.q.Close() }
func (s shardedQ) len() int                { return s.q.Len() }
func (s shardedQ) stats() obs.Stats        { return s.q.Stats() }
func (s shardedQ) laneLens() []int         { return s.q.LaneLens(nil) }

func (s shardedQ) producer() (func(uint64), func()) {
	if h, ok := s.q.Acquire(); ok {
		return h.Enqueue, h.Release
	}
	// All lanes taken (more producers than lanes-1): fall back to the
	// shared lane.
	return s.q.Enqueue, func() {}
}

type usegQ struct{ q *segq.SPMC[uint64] }

func (s usegQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s usegQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s usegQ) close()                  { s.q.Close() }
func (s usegQ) len() int                { return s.q.Len() }
func (s usegQ) stats() obs.Stats        { return s.q.Stats() }

type usegMPMCQ struct{ q *segq.MPMC[uint64] }

func (s usegMPMCQ) enqueue(v uint64)        { s.q.Enqueue(v) }
func (s usegMPMCQ) dequeue() (uint64, bool) { return s.q.Dequeue() }
func (s usegMPMCQ) close()                  { s.q.Close() }
func (s usegMPMCQ) len() int                { return s.q.Len() }
func (s usegMPMCQ) stats() obs.Stats        { return s.q.Stats() }

// newQueue builds the selected variant. For the unbounded variants the
// capacity becomes the segment size and the live view gains a segment
// recycling line; for sharded it is the per-lane depth and the queue
// gets one exclusive lane per producer (plus the shared fallback).
func newQueue(variant string, capacity, producers int, opts ...core.Option) (queue, error) {
	switch variant {
	case "spsc":
		q, err := core.NewSPSC[uint64](capacity, opts...)
		return spscQ{q}, err
	case "spmc":
		q, err := core.NewSPMC[uint64](capacity, opts...)
		return spmcQ{q}, err
	case "mpmc":
		q, err := core.NewMPMC[uint64](capacity, opts...)
		return mpmcQ{q}, err
	case "sharded":
		q, err := core.NewSharded[uint64](producers+1, capacity, opts...)
		return shardedQ{q}, err
	case "unbounded":
		q, err := segq.NewSPMC[uint64](core.ResolveOptions(append(opts, core.WithSegmentSize(capacity))...))
		return usegQ{q}, err
	case "unbounded-mpmc":
		q, err := segq.NewMPMC[uint64](core.ResolveOptions(append(opts, core.WithSegmentSize(capacity))...))
		return usegMPMCQ{q}, err
	default:
		return nil, fmt.Errorf("unknown variant %q (have spsc, spmc, mpmc, sharded, unbounded, unbounded-mpmc)", variant)
	}
}

func main() {
	variant := flag.String("variant", "spmc", "queue variant: spsc, spmc, mpmc, sharded, unbounded or unbounded-mpmc")
	producers := flag.Int("producers", 1, "producer goroutines (>1 requires a multi-producer variant)")
	consumers := flag.Int("consumers", 4, "consumer goroutines (spsc requires exactly 1)")
	capacity := flag.Int("cap", 1<<10, "queue capacity (power of two)")
	interval := flag.Duration("interval", time.Second, "refresh interval")
	duration := flag.Duration("duration", 0, "run length (0 = until interrupted)")
	httpAddr := flag.String("http", "", "serve /metrics (Prometheus) and /debug/vars (expvar) on this address")
	yieldTh := flag.Int("yield-threshold", 0, "spin count before yielding to the scheduler (0 = default)")
	prodDelay := flag.Duration("producer-delay", 0, "artificial work per enqueue")
	consDelay := flag.Duration("consumer-delay", 0, "artificial work per dequeue (slows consumers, forces gaps)")
	plain := flag.Bool("plain", false, "append one line per tick instead of refreshing in place")
	latency := flag.Bool("latency", false, "record per-op latency histograms and show p50/p99/p999/max per refresh")
	stallTh := flag.Duration("stall-threshold", 0, "arm the stall watchdog: waits past this become timestamped stall events (0 = off)")
	scrape := flag.String("scrape", "", "watch running ffqd brokers instead: poll these /metrics URLs, comma-separated (host:port implies http and /metrics; several = cluster view)")
	flag.Parse()

	if *scrape != "" {
		if err := runScrape(*scrape, *interval, *duration, *plain); err != nil {
			fatal(err)
		}
		return
	}

	if *producers < 1 || *consumers < 1 {
		fatal(fmt.Errorf("need at least one producer and one consumer"))
	}
	if *producers > 1 && *variant != "mpmc" && *variant != "unbounded-mpmc" && *variant != "sharded" {
		fatal(fmt.Errorf("%d producers require -variant mpmc, sharded or unbounded-mpmc", *producers))
	}
	if *variant == "spsc" && *consumers != 1 {
		fatal(fmt.Errorf("spsc supports exactly 1 consumer, got %d", *consumers))
	}

	opts := []core.Option{
		core.WithInstrumentation(),
		core.WithLayout(core.LayoutPadded),
		core.WithYieldThreshold(*yieldTh),
	}
	if *latency {
		opts = append(opts, core.WithOpLatency())
	}
	if *stallTh > 0 {
		opts = append(opts, core.WithStallWatchdog(*stallTh))
	}
	q, err := newQueue(*variant, *capacity, *producers, opts...)
	if err != nil {
		fatal(err)
	}
	info := expvarx.QueueInfo{
		Stats: q.stats,
		Len:   q.len,
		Cap:   *capacity,
	}
	if lq, ok := q.(laneQueue); ok {
		info.LaneLens = lq.laneLens
	}
	if err := expvarx.Register("ffq-top", info); err != nil {
		fatal(err)
	}

	if *httpAddr != "" {
		http.Handle("/metrics", expvarx.Handler())
		//ffq:detached metrics server serves until the process exits; ListenAndServe never returns cleanly
		go func() {
			// DefaultServeMux already carries expvar's /debug/vars.
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ffq-top: http:", err)
			}
		}()
	}

	// Workload. Producers enqueue monotonic counters until told to
	// stop; consumers drain until the queue closes. The artificial
	// delays are busy-waits: sleeping would park the goroutine and
	// hide exactly the spin behavior this tool visualizes.
	var stop atomic.Bool
	var prodWG, consWG sync.WaitGroup
	for p := 0; p < *producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "producer", "ffq_worker", strconv.Itoa(p),
			), func(context.Context) {
				enq := q.enqueue
				if lq, ok := q.(laneQueue); ok {
					var release func()
					enq, release = lq.producer()
					defer release()
				}
				var n uint64
				for !stop.Load() {
					enq(n)
					n++
					busyWait(*prodDelay)
				}
			})
		}(p)
	}
	for c := 0; c < *consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			pprof.Do(context.Background(), pprof.Labels(
				"ffq_role", "consumer", "ffq_worker", strconv.Itoa(c),
			), func(context.Context) {
				for {
					if _, ok := q.dequeue(); !ok {
						return
					}
					busyWait(*consDelay)
				}
			})
		}(c)
	}

	// Drive the display until the deadline or a signal.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()

	start := time.Now()
	prev := q.stats()
	prevAt := start
loop:
	for {
		select {
		case <-sig:
			break loop
		case <-deadline:
			break loop
		case now := <-ticker.C:
			cur := q.stats()
			var lanes []int
			if lq, ok := q.(laneQueue); ok {
				lanes = lq.laneLens()
			}
			render(os.Stdout, *plain, *variant, *capacity, q.len(), lanes, now.Sub(start),
				cur, cur.Sub(prev), now.Sub(prevAt))
			prev, prevAt = cur, now
		}
	}

	// Shut down: stop producers first (MPMC close requires all
	// producers done), then close and let consumers drain.
	stop.Store(true)
	prodWG.Wait()
	q.close()
	consWG.Wait()

	final := q.stats()
	fmt.Printf("\n--- final after %s ---\n%s\n", time.Since(start).Round(time.Millisecond), final)
	if final.WaitCount > 0 {
		fmt.Printf("wait histogram: %s\n", sparkline(final.WaitBuckets))
	}
	if len(final.RecentStalls) > 0 {
		fmt.Printf("recent stalls (newest first, ring of %d):\n", len(final.RecentStalls))
		for _, ev := range final.RecentStalls {
			fmt.Printf("  %s %s rank=%d stalled %s\n",
				time.Unix(0, ev.UnixNano).Format("15:04:05.000"),
				ev.Role, ev.Rank, time.Duration(ev.DurationNS).Round(time.Microsecond))
		}
	}
}

// render draws one refresh frame (or appends one line with plain).
// lanes is nil except for the sharded variant, where it holds the
// per-lane depths (lane 0 = shared fallback) and capacity is per-lane.
func render(w *os.File, plain bool, variant string, capacity, depth int, lanes []int,
	elapsed time.Duration, cur, d obs.Stats, dt time.Duration) {
	secs := dt.Seconds()
	if secs <= 0 {
		secs = 1
	}
	if plain {
		fmt.Fprintf(w, "t=%-8s depth=%-6d enq/s=%-12.0f deq/s=%-12.0f spin/op=%-8.2f gaps=%d/%d",
			elapsed.Round(time.Second), depth,
			float64(d.Enqueues)/secs, float64(d.Dequeues)/secs,
			d.SpinRatio(), cur.GapsCreated, cur.GapsSkipped)
		if lanes != nil {
			fmt.Fprintf(w, " lanes=%v", lanes)
		}
		if cur.EnqLatency != nil && cur.EnqLatency.Count > 0 {
			fmt.Fprintf(w, " enq-p999=%s", time.Duration(cur.EnqLatency.P999NS))
		}
		if cur.DeqLatency != nil && cur.DeqLatency.Count > 0 {
			fmt.Fprintf(w, " deq-p999=%s", time.Duration(cur.DeqLatency.P999NS))
		}
		if cur.StallThresholdNS > 0 {
			fmt.Fprintf(w, " stalls=%d", cur.StallEvents)
		}
		fmt.Fprintln(w)
		return
	}
	var b strings.Builder
	// Clear screen, home cursor.
	b.WriteString("\x1b[2J\x1b[H")
	totalCap := capacity
	if lanes != nil {
		totalCap = capacity * len(lanes)
		fmt.Fprintf(&b, "ffq-top — %s lanes=%d lane-cap=%d — up %s\n\n",
			variant, len(lanes), capacity, elapsed.Round(time.Second))
	} else {
		fmt.Fprintf(&b, "ffq-top — %s cap=%d — up %s\n\n", variant, capacity, elapsed.Round(time.Second))
	}
	fmt.Fprintf(&b, "  depth      %10d / %d (%.0f%%)\n", depth, totalCap, 100*float64(depth)/float64(totalCap))
	if lanes != nil {
		fmt.Fprintf(&b, "  lane depth %10v (lane 0 = shared fallback)\n", lanes)
	}
	fmt.Fprintf(&b, "  enqueue/s  %10.0f   (total %d)\n", float64(d.Enqueues)/secs, cur.Enqueues)
	fmt.Fprintf(&b, "  dequeue/s  %10.0f   (total %d)\n", float64(d.Dequeues)/secs, cur.Dequeues)
	fmt.Fprintf(&b, "  full spins %10.0f/s (total %d, %.3f per enqueue)\n",
		float64(d.FullSpins)/secs, cur.FullSpins, per(cur.FullSpins, cur.Enqueues))
	fmt.Fprintf(&b, "  empty spins%10.0f/s (total %d, %.3f per dequeue)\n",
		float64(d.EmptySpins)/secs, cur.EmptySpins, per(cur.EmptySpins, cur.Dequeues))
	fmt.Fprintf(&b, "  yields     %10.0f/s (producer %d, consumer %d)\n",
		float64(d.ProducerYields+d.ConsumerYields)/secs, cur.ProducerYields, cur.ConsumerYields)
	fmt.Fprintf(&b, "  gaps       %10.0f/s created (total %d created, %d skipped)\n",
		float64(d.GapsCreated)/secs, cur.GapsCreated, cur.GapsSkipped)
	if cur.SegsAllocated > 0 {
		fmt.Fprintf(&b, "  segments   %10d live (%d alloc, %d recycled, %d retired)\n",
			cur.SegsLive, cur.SegsAllocated, cur.SegsRecycled, cur.SegsRetired)
	}
	if cur.WaitCount > 0 {
		fmt.Fprintf(&b, "  waits      %10d   mean %s\n", cur.WaitCount, cur.MeanWait())
		fmt.Fprintf(&b, "  wait hist  %s  (64ns .. 17s, log2 buckets)\n", sparkline(cur.WaitBuckets))
	}
	if cur.EnqLatency != nil && cur.EnqLatency.Count > 0 {
		fmt.Fprintf(&b, "  enq lat    %s\n", latRow(cur.EnqLatency))
	}
	if cur.DeqLatency != nil && cur.DeqLatency.Count > 0 {
		fmt.Fprintf(&b, "  deq lat    %s\n", latRow(cur.DeqLatency))
	}
	if cur.StallThresholdNS > 0 {
		fmt.Fprintf(&b, "  stalls     %10d   past %s (completed %d, mean %s)\n",
			cur.StallEvents, time.Duration(cur.StallThresholdNS), cur.StallCount, cur.MeanStall())
		for i, ev := range cur.RecentStalls {
			if i == 3 {
				break
			}
			fmt.Fprintf(&b, "    %s %s rank=%d stalled %s\n",
				time.Unix(0, ev.UnixNano).Format("15:04:05.000"),
				ev.Role, ev.Rank, time.Duration(ev.DurationNS).Round(time.Microsecond))
		}
	}
	fmt.Fprintf(&b, "\n(ctrl-c to stop)\n")
	w.WriteString(b.String())
}

// latRow formats a per-op latency snapshot as one aligned percentile
// line. The percentiles are cumulative, like the totals above them.
func latRow(s *obs.LatencySnapshot) string {
	return fmt.Sprintf("p50=%-10s p99=%-10s p999=%-10s max=%-10s (n=%d)",
		time.Duration(s.P50NS), time.Duration(s.P99NS),
		time.Duration(s.P999NS), time.Duration(s.MaxNS), s.Count)
}

// per returns n/d guarding the empty denominator.
func per(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// sparkline renders histogram buckets 6..34 (64ns..17s) as a bar rune
// per bucket, scaled to the largest bucket.
func sparkline(buckets []int64) string {
	const lo, hi = 6, 34
	bars := []rune("▁▂▃▄▅▆▇█")
	if len(buckets) < hi+1 {
		return ""
	}
	var max int64
	for e := lo; e <= hi; e++ {
		if buckets[e] > max {
			max = buckets[e]
		}
	}
	if max == 0 {
		return strings.Repeat(" ", hi-lo+1)
	}
	var b strings.Builder
	for e := lo; e <= hi; e++ {
		if buckets[e] == 0 {
			b.WriteRune(' ')
			continue
		}
		idx := int(buckets[e] * int64(len(bars)-1) / max)
		b.WriteRune(bars[idx])
	}
	return b.String()
}

// busyWait spins for roughly d without sleeping (sleeping parks the
// goroutine and hides the queue's own spin behavior). Long delays fall
// back to Sleep to stay scheduler-friendly.
func busyWait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= time.Millisecond {
		time.Sleep(d)
		return
	}
	for end := time.Now().Add(d); time.Now().Before(end); {
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffq-top:", err)
	os.Exit(1)
}
