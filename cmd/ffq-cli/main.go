// Command ffq-cli talks to a running ffqd broker from the shell.
//
// Usage:
//
//	ffq-cli [-addr host:7077] pub <topic> [-key k | -part N] [msg...]   # publish args, or stdin lines
//	ffq-cli [-addr host:7077] sub <topic> [-part N]  # print messages until EOF/interrupt
//	ffq-cli [-addr host:7077] consume <topic> [-part N] -from 0 -group workers
//	ffq-cli [-addr host:7077] offsets <topic> [-part N] [-group workers]
//	ffq-cli [-addr host:7077] meta                   # cluster shape and topics
//	ffq-cli [-addr host:7077] ping [-n count]
//
// Against a clustered broker (ffqd -cluster), pub -key routes like a
// real producer: it fetches the cluster shape with METADATA, hashes
// the key to a partition (FNV-1a, the pinned routing hash), computes
// the partition's owner by rendezvous hashing, and publishes to that
// node — redialing if it isn't the one -addr points at. pub/sub/
// consume/offsets -part address one explicit partition on the
// connected node (consume and offsets work on replicas too; pub and
// sub need the owner).
//
// pub publishes each argument as one message; with no message
// arguments it reads stdin and publishes one message per line (so
// `seq 1000 | ffq-cli pub load` is a quick smoke source). Messages
// are auto-batched into PRODUCE frames and the command drains all
// ACKs before exiting, so a clean exit means the broker accepted
// every message.
//
// sub joins the topic's competitive-consumer pool: each message goes
// to exactly one subscriber, so two ffq-cli sub processes on one
// topic split the stream. It prints one message per line until the
// broker ends the stream (drain finished) or an interrupt arrives.
//
// consume replays a durable topic's write-ahead log (a broker started
// with -data-dir): every retained message from -from onward, tagged
// with its offset, then keeps tailing the live head. -from cursor
// resumes from -group's committed cursor; with a group, the cursor is
// committed back every -commit-every messages, so a later
// `consume -from cursor` continues where this one stopped.
//
// offsets prints a durable topic's retained range and, with -group,
// the group's committed cursor.
//
// ping measures broker round-trip time over the wire protocol.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ffq/internal/broker/client"
	"ffq/internal/cluster"
)

func main() {
	addr := flag.String("addr", "localhost:7077", "broker address")
	window := flag.Int("window", 1024, "consumer credit window (sub) / publisher pipeline window (pub)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: ffq-cli [flags] pub|sub|ping ..."))
	}
	cmd := args[0]
	switch cmd {
	case "pub", "sub", "consume", "offsets", "meta", "ping":
	default:
		fatal(fmt.Errorf("unknown command %q (have pub, sub, consume, offsets, meta, ping)", cmd))
	}

	c, err := client.Dial(*addr, client.Options{Window: *window})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "pub":
		err = runPub(c, *window, args[1:])
	case "sub":
		err = runSub(c, args[1:])
	case "consume":
		err = runConsume(c, args[1:])
	case "offsets":
		err = runOffsets(c, args[1:])
	case "meta":
		err = runMeta(c)
	case "ping":
		err = runPing(c, args[1:])
	}
	if err != nil {
		fatal(err)
	}
}

// parsePart converts a -part flag value (-1 = unset) to a partition id.
func parsePart(part int) uint32 {
	if part < 0 {
		return client.NoPartition
	}
	return uint32(part)
}

// runPub publishes the argument messages, or stdin lines when none
// are given, then drains the ACK window. -key routes to the keyed
// partition on its owner node; -part pins a partition on the
// connected node.
func runPub(c *client.Client, window int, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("pub: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("pub", flag.ContinueOnError)
	key := fs.String("key", "", "route by key: hash to a partition and publish to its owner node")
	partArg := fs.Int("part", -1, "publish to this explicit partition on the connected node (-1 = unpartitioned)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *key != "" && *partArg >= 0 {
		return fmt.Errorf("pub: -key and -part are mutually exclusive")
	}
	part := parsePart(*partArg)
	dest := "" // non-empty when -key routed to a different node
	if *key != "" {
		meta, err := c.Meta()
		if err != nil {
			return err
		}
		if meta.Partitions == 0 {
			return fmt.Errorf("pub: -key needs a clustered broker (this one is standalone)")
		}
		cfg := clusterConfig(meta)
		part = cluster.PartitionForKey([]byte(*key), meta.Partitions)
		owner := cfg.Owner(topic, part)
		if owner.ID != meta.NodeID {
			// The connected node is not the owner: route the publish.
			oc, err := client.Dial(owner.Addr, client.Options{Window: window})
			if err != nil {
				return fmt.Errorf("pub: dialing owner %s (%s): %w", owner.ID, owner.Addr, err)
			}
			defer oc.Close()
			c = oc
			dest = " on " + owner.ID
		}
	}
	n := 0
	msgs := fs.Args()
	if len(msgs) > 0 {
		for _, m := range msgs {
			if err := c.PublishPart(topic, part, []byte(m)); err != nil {
				return err
			}
			n++
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if err := c.PublishPart(topic, part, sc.Bytes()); err != nil {
				return err
			}
			n++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if err := c.Drain(); err != nil {
		return err
	}
	where := topic
	if part != client.NoPartition {
		where = fmt.Sprintf("%s@%d", topic, part)
	}
	fmt.Fprintf(os.Stderr, "ffq-cli: published %d message(s) to %q%s\n", n, where, dest)
	return nil
}

// clusterConfig rebuilds the placement view from a METADATA answer so
// the cli can compute owners exactly as the brokers do.
func clusterConfig(meta client.MetaInfo) *cluster.Config {
	cfg := &cluster.Config{
		NodeID:      meta.NodeID,
		Partitions:  meta.Partitions,
		Replication: meta.Replication,
	}
	for _, n := range meta.Nodes {
		cfg.Peers = append(cfg.Peers, cluster.Peer{ID: n.ID, Addr: n.Addr})
	}
	return cfg
}

// runMeta prints the broker's cluster shape and partitioned topics.
func runMeta(c *client.Client) error {
	meta, err := c.Meta()
	if err != nil {
		return err
	}
	if meta.Partitions == 0 {
		fmt.Println("standalone broker (no cluster)")
	} else {
		fmt.Printf("node        %s\npartitions  %d\nreplication %d\n", meta.NodeID, meta.Partitions, meta.Replication)
		for _, n := range meta.Nodes {
			self := ""
			if n.ID == meta.NodeID {
				self = " (this node)"
			}
			fmt.Printf("peer        %s=%s%s\n", n.ID, n.Addr, self)
		}
	}
	for _, t := range meta.Topics {
		fmt.Printf("topic       %s\n", t)
	}
	return nil
}

// runSub prints messages until end-of-stream or a signal.
func runSub(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sub: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("sub", flag.ContinueOnError)
	partArg := fs.Int("part", -1, "subscribe to this explicit partition (-1 = unpartitioned)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	sub, err := c.SubscribePart(topic, parsePart(*partArg), 0) // 0 = client default window
	if err != nil {
		return err
	}

	// Close the connection on interrupt; Recv then returns !ok.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//ffq:detached signal watcher lives for the process; Close unblocks Recv and main exits
	go func() {
		<-sig
		c.Close()
	}()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	n := 0
	for {
		msg, ok := sub.Recv()
		if !ok {
			break
		}
		w.Write(msg)
		w.WriteByte('\n')
		if n++; n%64 == 0 {
			w.Flush()
		}
	}
	w.Flush()
	if sub.Ended() {
		fmt.Fprintf(os.Stderr, "ffq-cli: %q ended after %d message(s) (broker drained)\n", topic, n)
		return nil
	}
	if err := c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ffq-cli: disconnected after %d message(s)\n", n)
	}
	return nil
}

// runConsume replays a durable topic from an offset and tails the
// head, printing "offset<TAB>payload" lines.
func runConsume(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("consume: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("consume", flag.ContinueOnError)
	fromArg := fs.String("from", "0", "replay start offset, or \"cursor\" to resume from -group's committed cursor")
	group := fs.String("group", "", "consumer group for cursor commits")
	commitEvery := fs.Int("commit-every", 256, "with -group, commit the cursor every N messages (0 = never)")
	partArg := fs.Int("part", -1, "replay this explicit partition (-1 = unpartitioned); replicas serve it too")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	from := client.FromCursor
	if *fromArg != "cursor" {
		n, err := strconv.ParseUint(*fromArg, 10, 64)
		if err != nil {
			return fmt.Errorf("consume: -from %q: want an offset or \"cursor\"", *fromArg)
		}
		from = n
	} else if *group == "" {
		return fmt.Errorf("consume: -from cursor needs -group")
	}

	sub, err := c.SubscribeFromPart(topic, parsePart(*partArg), 0, from, *group, false)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//ffq:detached signal watcher lives for the process; Close unblocks RecvMsg and main exits
	go func() {
		<-sig
		c.Close()
	}()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	n := 0
	last := uint64(0)
	for {
		m, ok := sub.RecvMsg()
		if !ok {
			break
		}
		last = m.Offset
		fmt.Fprintf(w, "%d\t%s\n", m.Offset, m.Payload)
		n++
		if n%64 == 0 {
			w.Flush()
		}
		if *group != "" && *commitEvery > 0 && n%*commitEvery == 0 {
			if err := sub.Commit(m.Offset + 1); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if *group != "" && *commitEvery > 0 && n > 0 && c.Err() == nil {
		// Best-effort final commit; the connection may already be gone
		// after an interrupt, in which case the periodic commits stand.
		sub.Commit(last + 1)
	}
	if sub.Ended() {
		fmt.Fprintf(os.Stderr, "ffq-cli: %q ended after %d message(s) (broker drained)\n", topic, n)
		return nil
	}
	if err := c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ffq-cli: disconnected after %d message(s)\n", n)
	}
	return nil
}

// runOffsets prints a durable topic's retained offset range and the
// optional group cursor.
func runOffsets(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("offsets: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("offsets", flag.ContinueOnError)
	group := fs.String("group", "", "also report this group's committed cursor")
	partArg := fs.Int("part", -1, "query this explicit partition (-1 = unpartitioned)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	part := parsePart(*partArg)
	oldest, next, cursor, err := c.OffsetsPart(topic, part, *group)
	if err != nil {
		return err
	}
	display := topic
	if part != client.NoPartition {
		display = fmt.Sprintf("%s@%d", topic, part)
	}
	fmt.Printf("topic    %s\noldest   %d\nnext     %d\nretained %d\n", display, oldest, next, next-oldest)
	if *group != "" {
		fmt.Printf("cursor   %d (group %q, %d behind head)\n", cursor, *group, next-cursor)
	}
	return nil
}

// runPing measures round-trips.
func runPing(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	count := fs.Int("n", 4, "pings to send")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var total time.Duration
	for i := 0; i < *count; i++ {
		rtt, err := c.Ping()
		if err != nil {
			return err
		}
		total += rtt
		fmt.Printf("pong %d: %s\n", i+1, rtt)
	}
	if *count > 0 {
		fmt.Printf("avg: %s\n", total/time.Duration(*count))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffq-cli:", err)
	os.Exit(1)
}
