// Command ffq-cli talks to a running ffqd broker from the shell.
//
// Usage:
//
//	ffq-cli [-addr host:7077] pub <topic> [msg...]   # publish args, or stdin lines
//	ffq-cli [-addr host:7077] sub <topic>            # print messages until EOF/interrupt
//	ffq-cli [-addr host:7077] ping [-n count]
//
// pub publishes each argument as one message; with no message
// arguments it reads stdin and publishes one message per line (so
// `seq 1000 | ffq-cli pub load` is a quick smoke source). Messages
// are auto-batched into PRODUCE frames and the command drains all
// ACKs before exiting, so a clean exit means the broker accepted
// every message.
//
// sub joins the topic's competitive-consumer pool: each message goes
// to exactly one subscriber, so two ffq-cli sub processes on one
// topic split the stream. It prints one message per line until the
// broker ends the stream (drain finished) or an interrupt arrives.
//
// ping measures broker round-trip time over the wire protocol.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ffq/internal/broker/client"
)

func main() {
	addr := flag.String("addr", "localhost:7077", "broker address")
	window := flag.Int("window", 1024, "consumer credit window (sub) / publisher pipeline window (pub)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: ffq-cli [flags] pub|sub|ping ..."))
	}
	cmd := args[0]
	if cmd != "pub" && cmd != "sub" && cmd != "ping" {
		fatal(fmt.Errorf("unknown command %q (have pub, sub, ping)", cmd))
	}

	c, err := client.Dial(*addr, client.Options{Window: *window})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "pub":
		err = runPub(c, args[1:])
	case "sub":
		err = runSub(c, args[1:])
	case "ping":
		err = runPing(c, args[1:])
	}
	if err != nil {
		fatal(err)
	}
}

// runPub publishes the argument messages, or stdin lines when none
// are given, then drains the ACK window.
func runPub(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("pub: need a topic")
	}
	topic := args[0]
	n := 0
	if len(args) > 1 {
		for _, m := range args[1:] {
			if err := c.Publish(topic, []byte(m)); err != nil {
				return err
			}
			n++
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if err := c.Publish(topic, sc.Bytes()); err != nil {
				return err
			}
			n++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if err := c.Drain(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ffq-cli: published %d message(s) to %q\n", n, topic)
	return nil
}

// runSub prints messages until end-of-stream or a signal.
func runSub(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sub: need a topic")
	}
	topic := args[0]
	sub, err := c.Subscribe(topic, 0) // 0 = client default window
	if err != nil {
		return err
	}

	// Close the connection on interrupt; Recv then returns !ok.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		c.Close()
	}()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	n := 0
	for {
		msg, ok := sub.Recv()
		if !ok {
			break
		}
		w.Write(msg)
		w.WriteByte('\n')
		if n++; n%64 == 0 {
			w.Flush()
		}
	}
	w.Flush()
	if sub.Ended() {
		fmt.Fprintf(os.Stderr, "ffq-cli: %q ended after %d message(s) (broker drained)\n", topic, n)
		return nil
	}
	if err := c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ffq-cli: disconnected after %d message(s)\n", n)
	}
	return nil
}

// runPing measures round-trips.
func runPing(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	count := fs.Int("n", 4, "pings to send")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var total time.Duration
	for i := 0; i < *count; i++ {
		rtt, err := c.Ping()
		if err != nil {
			return err
		}
		total += rtt
		fmt.Printf("pong %d: %s\n", i+1, rtt)
	}
	if *count > 0 {
		fmt.Printf("avg: %s\n", total/time.Duration(*count))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffq-cli:", err)
	os.Exit(1)
}
