// Command ffq-cli talks to a running ffqd broker from the shell.
//
// Usage:
//
//	ffq-cli [-addr host:7077] pub <topic> [msg...]   # publish args, or stdin lines
//	ffq-cli [-addr host:7077] sub <topic>            # print messages until EOF/interrupt
//	ffq-cli [-addr host:7077] consume <topic> -from 0 -group workers
//	ffq-cli [-addr host:7077] offsets <topic> [-group workers]
//	ffq-cli [-addr host:7077] ping [-n count]
//
// pub publishes each argument as one message; with no message
// arguments it reads stdin and publishes one message per line (so
// `seq 1000 | ffq-cli pub load` is a quick smoke source). Messages
// are auto-batched into PRODUCE frames and the command drains all
// ACKs before exiting, so a clean exit means the broker accepted
// every message.
//
// sub joins the topic's competitive-consumer pool: each message goes
// to exactly one subscriber, so two ffq-cli sub processes on one
// topic split the stream. It prints one message per line until the
// broker ends the stream (drain finished) or an interrupt arrives.
//
// consume replays a durable topic's write-ahead log (a broker started
// with -data-dir): every retained message from -from onward, tagged
// with its offset, then keeps tailing the live head. -from cursor
// resumes from -group's committed cursor; with a group, the cursor is
// committed back every -commit-every messages, so a later
// `consume -from cursor` continues where this one stopped.
//
// offsets prints a durable topic's retained range and, with -group,
// the group's committed cursor.
//
// ping measures broker round-trip time over the wire protocol.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"ffq/internal/broker/client"
)

func main() {
	addr := flag.String("addr", "localhost:7077", "broker address")
	window := flag.Int("window", 1024, "consumer credit window (sub) / publisher pipeline window (pub)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		fatal(fmt.Errorf("usage: ffq-cli [flags] pub|sub|ping ..."))
	}
	cmd := args[0]
	switch cmd {
	case "pub", "sub", "consume", "offsets", "ping":
	default:
		fatal(fmt.Errorf("unknown command %q (have pub, sub, consume, offsets, ping)", cmd))
	}

	c, err := client.Dial(*addr, client.Options{Window: *window})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "pub":
		err = runPub(c, args[1:])
	case "sub":
		err = runSub(c, args[1:])
	case "consume":
		err = runConsume(c, args[1:])
	case "offsets":
		err = runOffsets(c, args[1:])
	case "ping":
		err = runPing(c, args[1:])
	}
	if err != nil {
		fatal(err)
	}
}

// runPub publishes the argument messages, or stdin lines when none
// are given, then drains the ACK window.
func runPub(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("pub: need a topic")
	}
	topic := args[0]
	n := 0
	if len(args) > 1 {
		for _, m := range args[1:] {
			if err := c.Publish(topic, []byte(m)); err != nil {
				return err
			}
			n++
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if err := c.Publish(topic, sc.Bytes()); err != nil {
				return err
			}
			n++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if err := c.Drain(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ffq-cli: published %d message(s) to %q\n", n, topic)
	return nil
}

// runSub prints messages until end-of-stream or a signal.
func runSub(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sub: need a topic")
	}
	topic := args[0]
	sub, err := c.Subscribe(topic, 0) // 0 = client default window
	if err != nil {
		return err
	}

	// Close the connection on interrupt; Recv then returns !ok.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//ffq:detached signal watcher lives for the process; Close unblocks Recv and main exits
	go func() {
		<-sig
		c.Close()
	}()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	n := 0
	for {
		msg, ok := sub.Recv()
		if !ok {
			break
		}
		w.Write(msg)
		w.WriteByte('\n')
		if n++; n%64 == 0 {
			w.Flush()
		}
	}
	w.Flush()
	if sub.Ended() {
		fmt.Fprintf(os.Stderr, "ffq-cli: %q ended after %d message(s) (broker drained)\n", topic, n)
		return nil
	}
	if err := c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ffq-cli: disconnected after %d message(s)\n", n)
	}
	return nil
}

// runConsume replays a durable topic from an offset and tails the
// head, printing "offset<TAB>payload" lines.
func runConsume(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("consume: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("consume", flag.ContinueOnError)
	fromArg := fs.String("from", "0", "replay start offset, or \"cursor\" to resume from -group's committed cursor")
	group := fs.String("group", "", "consumer group for cursor commits")
	commitEvery := fs.Int("commit-every", 256, "with -group, commit the cursor every N messages (0 = never)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	from := client.FromCursor
	if *fromArg != "cursor" {
		n, err := strconv.ParseUint(*fromArg, 10, 64)
		if err != nil {
			return fmt.Errorf("consume: -from %q: want an offset or \"cursor\"", *fromArg)
		}
		from = n
	} else if *group == "" {
		return fmt.Errorf("consume: -from cursor needs -group")
	}

	sub, err := c.SubscribeFrom(topic, 0, from, *group)
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	//ffq:detached signal watcher lives for the process; Close unblocks RecvMsg and main exits
	go func() {
		<-sig
		c.Close()
	}()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	n := 0
	last := uint64(0)
	for {
		m, ok := sub.RecvMsg()
		if !ok {
			break
		}
		last = m.Offset
		fmt.Fprintf(w, "%d\t%s\n", m.Offset, m.Payload)
		n++
		if n%64 == 0 {
			w.Flush()
		}
		if *group != "" && *commitEvery > 0 && n%*commitEvery == 0 {
			if err := sub.Commit(m.Offset + 1); err != nil {
				return err
			}
		}
	}
	w.Flush()
	if *group != "" && *commitEvery > 0 && n > 0 && c.Err() == nil {
		// Best-effort final commit; the connection may already be gone
		// after an interrupt, in which case the periodic commits stand.
		sub.Commit(last + 1)
	}
	if sub.Ended() {
		fmt.Fprintf(os.Stderr, "ffq-cli: %q ended after %d message(s) (broker drained)\n", topic, n)
		return nil
	}
	if err := c.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ffq-cli: disconnected after %d message(s)\n", n)
	}
	return nil
}

// runOffsets prints a durable topic's retained offset range and the
// optional group cursor.
func runOffsets(c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("offsets: need a topic")
	}
	topic := args[0]
	fs := flag.NewFlagSet("offsets", flag.ContinueOnError)
	group := fs.String("group", "", "also report this group's committed cursor")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	oldest, next, cursor, err := c.Offsets(topic, *group)
	if err != nil {
		return err
	}
	fmt.Printf("topic    %s\noldest   %d\nnext     %d\nretained %d\n", topic, oldest, next, next-oldest)
	if *group != "" {
		fmt.Printf("cursor   %d (group %q, %d behind head)\n", cursor, *group, next-cursor)
	}
	return nil
}

// runPing measures round-trips.
func runPing(c *client.Client, args []string) error {
	fs := flag.NewFlagSet("ping", flag.ContinueOnError)
	count := fs.Int("n", 4, "pings to send")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var total time.Duration
	for i := 0; i < *count; i++ {
		rtt, err := c.Ping()
		if err != nil {
			return err
		}
		total += rtt
		fmt.Printf("pong %d: %s\n", i+1, rtt)
	}
	if *count > 0 {
		fmt.Printf("avg: %s\n", total/time.Duration(*count))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffq-cli:", err)
	os.Exit(1)
}
