// Command ffq-all runs the complete experiment suite — every figure
// of the FFQ paper's evaluation — and writes the tables to stdout (or
// to a file), ready to be pasted into EXPERIMENTS.md.
//
// Usage:
//
//	ffq-all -scale 0.1 -runs 3          # quick pass
//	ffq-all -out results.txt            # full paper-scale run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ffq/internal/affinity"
	"ffq/internal/experiments"
)

func main() {
	runs := flag.Int("runs", 10, "repetitions per data point (paper: 10)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	maxThreads := flag.Int("max-threads", 0, "sweep cap (0 = NumCPU)")
	maxExp := flag.Int("max-size", 20, "largest queue size exponent for size sweeps")
	pairs := flag.Int("pairs", 1, "producer/consumer pairs for figure 6")
	out := flag.String("out", "", "write output to this file instead of stdout")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffq-all:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	o := experiments.DefaultOptions()
	o.Runs = *runs
	o.Scale = *scale
	o.MaxThreads = *maxThreads
	o.MaxSizeExp = *maxExp

	top := affinity.Detect()
	fmt.Fprintf(w, "# FFQ reproduction run\n")
	fmt.Fprintf(w, "date: %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(w, "go: %s  GOOS/GOARCH: %s/%s  NumCPU: %d  cores: %d  pinning: %v\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.NumCPU(), top.NumCores(), affinity.Supported())
	fmt.Fprintf(w, "runs=%d scale=%g\n\n", o.Runs, o.Scale)

	start := time.Now()
	tables, err := experiments.All(o, *pairs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-all:", err)
		os.Exit(1)
	}
	for _, tbl := range tables {
		if err := tbl.Fprint(w); err != nil {
			fmt.Fprintln(os.Stderr, "ffq-all:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Second))
}
