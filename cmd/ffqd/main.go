// Command ffqd is the FFQ message broker daemon: it serves the ffqd
// wire protocol on a TCP listener, fanning PRODUCE batches out to
// credit-gated subscribers through per-topic sharded FFQ queues —
// one wait-free producer lane per connection (see internal/broker for
// the data plane and internal/wire for the frame format).
//
// Usage:
//
//	ffqd                                     # listen on :7077
//	ffqd -listen :7077 -metrics :9077        # plus Prometheus /metrics
//	                                         # and expvar /debug/vars
//	ffqd -topic-lanes 16 -lane-depth 4096 -deliver-batch 128
//	ffqd -drain-timeout 10s                  # bound for graceful shutdown
//	ffqd -metrics :9077 -op-latency \
//	     -stall-threshold 5ms                # per-op latency histograms and
//	                                         # stall events on topic queues
//	ffqd -data-dir /var/lib/ffqd \
//	     -fsync interval -fsync-interval 50ms \
//	     -segment-bytes 67108864 \
//	     -retention-bytes 1073741824 -retention-age 72h
//	                                         # durable topics: WAL-backed
//	                                         # persistence with replay
//	ffqd -cluster -node-id n1 \
//	     -peers n1=10.0.0.1:7077,n2=10.0.0.2:7077,n3=10.0.0.3:7077 \
//	     -partitions 8 -replication 2 -data-dir /var/lib/ffqd
//	                                         # clustered: partitioned topics,
//	                                         # rendezvous placement, async
//	                                         # follower replication
//
// With -cluster set, topics are partitioned: producers route each
// message by key to one of -partitions partitions (FNV-1a of the key,
// computed client-side), every (topic, partition) is placed on
// -replication nodes by rendezvous hashing over the static -peers
// list, and each non-owner holder runs a strict log follower that
// copies the owner's WAL into a local one and acks its progress as a
// __replica/<node-id> cursor on the owner. PRODUCE and live CONSUME
// are owner-only; replay and OFFSETS are served by replicas too. All
// nodes must agree on -peers, -partitions and -replication.
//
// With -data-dir set every topic is durable: PRODUCE batches are
// appended to a per-topic write-ahead log before they are
// acknowledged, consumers can replay from any retained offset
// (ffq-cli consume -from / -group), and a restart recovers the logs —
// including truncating a torn tail after a crash. -fsync picks the
// durability/throughput trade: "off" (OS page cache), "interval"
// (background fsync every -fsync-interval), "segment" (fsync at each
// segment roll), "always" (fsync before every ACK).
//
// SIGINT or SIGTERM starts a graceful drain: accepted messages are
// flushed to their topics and delivered to subscribers (still
// credit-gated, so consumers keep replenishing windows during the
// drain) before the process exits. -drain-timeout bounds the wait;
// on expiry the remaining subscriptions are cut off.
//
// Watch a running broker with ffq-top -scrape <metrics-addr>.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ffq/internal/broker"
	"ffq/internal/cluster"
	"ffq/internal/obs/expvarx"
	"ffq/internal/wal"
)

func main() {
	listen := flag.String("listen", ":7077", "address to serve the ffqd wire protocol on")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics and expvar /debug/vars on this address (empty = off)")
	topicLanes := flag.Int("topic-lanes", 0, "per-producer lanes per topic queue (0 = default)")
	laneDepth := flag.Int("lane-depth", 0, "per-lane topic capacity in messages, a power of two (0 = default)")
	ingress := flag.Int("ingress-buffer", 0, "per-connection staging capacity in PRODUCE batches, a power of two (0 = default)")
	deliverBatch := flag.Int("deliver-batch", 0, "max messages per DELIVER frame (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound")
	noInstrument := flag.Bool("no-instrument", false, "disable queue instrumentation and the metrics collectors")
	opLatency := flag.Bool("op-latency", false, "record per-op enqueue/dequeue latency histograms on topic queues (ffq_op_latency_ns)")
	stallTh := flag.Duration("stall-threshold", 0, "arm the stall watchdog on topic queues: waits past this become stall events (0 = off)")
	dataDir := flag.String("data-dir", "", "durable topics: write-ahead log directory (empty = in-memory only)")
	shmDir := flag.String("shm-dir", "", "shared-memory ingress: scan this directory for mmap segment files from local producers (empty = off)")
	shmScan := flag.Duration("shm-scan-interval", 0, "how often -shm-dir is scanned for new segments (0 = default 50ms)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: off, interval, segment or always")
	fsyncInterval := flag.Duration("fsync-interval", 0, "background fsync period under -fsync interval (0 = default)")
	segmentBytes := flag.Int64("segment-bytes", 0, "WAL segment roll threshold in bytes (0 = default 64MiB)")
	retentionBytes := flag.Int64("retention-bytes", 0, "per-topic WAL size bound; oldest segments dropped past it (0 = unbounded)")
	retentionAge := flag.Duration("retention-age", 0, "per-topic WAL age bound; older sealed segments dropped (0 = unbounded)")
	clusterMode := flag.Bool("cluster", false, "cluster mode: partitioned topics with rendezvous placement and async replication (requires -node-id, -peers, -data-dir)")
	nodeID := flag.String("node-id", "", "this node's id in the peer list (cluster mode)")
	peersFlag := flag.String("peers", "", "static cluster members as id=host:port,... including this node (cluster mode)")
	partitions := flag.Uint("partitions", 8, "per-topic partition count (cluster mode)")
	replication := flag.Uint("replication", 2, "nodes holding each partition: one owner plus replicas (cluster mode)")
	pollInterval := flag.Duration("poll-interval", 0, "replication topic-discovery period (cluster mode, 0 = default)")
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fatal(err)
	}
	// The interval default only means anything with a WAL; without
	// -data-dir it would fail validation, so it applies only when
	// durable topics are on. An explicit -fsync without -data-dir still
	// reaches Validate and is rejected as the operator error it is.
	if *dataDir == "" {
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "fsync" })
		if !explicit {
			policy = wal.SyncOff
		}
	}
	var clusterCfg *cluster.Config
	if *clusterMode {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			fatal(err)
		}
		clusterCfg = &cluster.Config{
			NodeID:      *nodeID,
			Peers:       peers,
			Partitions:  uint32(*partitions),
			Replication: uint32(*replication),
		}
	}
	opts := broker.Options{
		IngressBuffer:   *ingress,
		DeliverBatch:    *deliverBatch,
		TopicLanes:      *topicLanes,
		TopicLaneDepth:  *laneDepth,
		Instrument:      !*noInstrument,
		OpLatency:       *opLatency,
		StallThreshold:  *stallTh,
		DataDir:         *dataDir,
		Fsync:           policy,
		FsyncInterval:   *fsyncInterval,
		SegmentBytes:    *segmentBytes,
		RetentionBytes:  *retentionBytes,
		RetentionAge:    *retentionAge,
		ShmDir:          *shmDir,
		ShmScanInterval: *shmScan,
		Cluster:         clusterCfg,
	}
	// Validate explicitly before anything opens: a bad flag combination
	// is an operator error, reported as one typed message.
	if err := opts.Validate(); err != nil {
		fatal(err)
	}
	b, err := broker.New(opts)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "ffqd: durable topics in %s (fsync=%s)\n", *dataDir, policy)
	}
	if *shmDir != "" {
		fmt.Fprintf(os.Stderr, "ffqd: shared-memory ingress from %s\n", *shmDir)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ffqd: listening on %s\n", ln.Addr())

	var node *cluster.Node
	if clusterCfg != nil {
		node, err = cluster.StartNode(cluster.NodeOptions{
			Config: clusterCfg,
			OpenLog: func(topic string, part uint32) (cluster.LocalLog, error) {
				return b.PartitionLog(topic, part)
			},
			PollInterval: *pollInterval,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "ffqd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ffqd: cluster node %s (%d peers, %d partitions, replication %d)\n",
			clusterCfg.NodeID, len(clusterCfg.Peers), clusterCfg.Partitions, clusterCfg.Replication)
	}

	if *metrics != "" {
		http.Handle("/metrics", expvarx.Handler())
		//ffq:detached metrics server serves until the process exits; ListenAndServe never returns cleanly
		go func() {
			// DefaultServeMux already carries expvar's /debug/vars.
			if err := http.ListenAndServe(*metrics, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ffqd: metrics:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ffqd: metrics on http://%s/metrics\n", *metrics)
	}

	// Serve until a signal; then drain.
	serveErr := make(chan error, 1)
	go func() { serveErr <- b.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ffqd: %v, draining (up to %s)\n", s, *drainTimeout)
		if node != nil {
			// Stop the replication followers first: they hold client
			// connections into peers and into this broker's data path.
			node.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := b.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffqd: drain timed out:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "ffqd: drained")
	case err := <-serveErr:
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffqd:", err)
	os.Exit(1)
}
