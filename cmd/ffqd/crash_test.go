package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"ffq/internal/broker/client"
)

// buildFFQD compiles this command into dir and returns the binary path.
func buildFFQD(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "ffqd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ffqd: %v\n%s", err, out)
	}
	return bin
}

// startFFQD launches the binary with the given extra flags on an
// ephemeral port and parses the bound address off its stderr banner.
func startFFQD(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start ffqd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	listenRe := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		t.Fatal("ffqd never printed its listen banner")
		return nil, ""
	}
}

// TestCrashRestartReplay is the end-to-end durability proof from the
// issue: run the real ffqd binary with -fsync always, publish and ack
// a prefix, commit a consumer-group cursor, then SIGKILL the process
// mid-publish (no drain, no clean shutdown). A fresh ffqd on the same
// data dir must recover the log — truncating whatever torn tail the
// kill left — and a replay from the group's cursor must deliver every
// acknowledged message exactly once: contiguous offsets, each payload
// a pure function of its offset, no duplicates and no gaps.
func TestCrashRestartReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real ffqd process; skipped in -short")
	}
	scratch := t.TempDir()
	dataDir := filepath.Join(scratch, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	bin := buildFFQD(t, scratch)
	durableFlags := []string{"-data-dir", dataDir, "-fsync", "always"}

	proc, addr := startFFQD(t, bin, durableFlags...)

	payload := func(off uint64) string { return fmt.Sprintf("crash-%06d", off) }
	const acked = 1000
	const committed = 300

	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < acked; i++ {
		if err := prod.Publish("orders", []byte(payload(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain returns only after the broker ACKed every frame; with
	// -fsync always each ACK implies the batch hit the disk first.
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}

	// Consume a prefix under a group and commit its cursor.
	cons, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cons.SubscribeFrom("orders", 64, 0, "g1")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < committed; i++ {
		m, ok := sub.RecvMsg()
		if !ok {
			t.Fatalf("replay ended at %d: %v", i, cons.Err())
		}
		if m.Offset != i {
			t.Fatalf("offset %d, want %d", m.Offset, i)
		}
	}
	if err := sub.Commit(committed); err != nil {
		t.Fatal(err)
	}
	if _, _, cursor, err := cons.Offsets("orders", "g1"); err != nil || cursor != committed {
		t.Fatalf("cursor = %d, %v; want %d", cursor, err, committed)
	}
	cons.Close()

	// Keep publishing with no drain and SIGKILL mid-stream: some of
	// these frames will be in flight, half-written, or torn on disk.
	go func() {
		for i := uint64(acked); i < acked+100000; i++ {
			if prod.Publish("orders", []byte(payload(i))) != nil {
				return // the process died under us, as intended
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := proc.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc.Wait()
	prod.Close()

	// Restart on the same data dir; recovery must truncate any torn
	// tail and preserve everything that was ever acknowledged.
	proc2, addr2 := startFFQD(t, bin, durableFlags...)
	c2, err := client.Dial(addr2, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldest, next, cursor, err := c2.Offsets("orders", "g1")
	if err != nil {
		t.Fatal(err)
	}
	if oldest != 0 {
		t.Fatalf("oldest = %d after restart, want 0", oldest)
	}
	if next < acked {
		t.Fatalf("recovered head %d below the acknowledged prefix %d: ACKed messages were lost", next, acked)
	}
	if cursor != committed {
		t.Fatalf("recovered cursor = %d, want %d", cursor, committed)
	}

	// Exactly-once from the cursor: offsets must be contiguous from
	// the commit point (no gaps, no duplicates) and every payload must
	// match its offset.
	sub2, err := c2.SubscribeFrom("orders", 64, client.FromCursor, "g1")
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(committed); want < next; want++ {
		m, ok := sub2.RecvMsg()
		if !ok {
			t.Fatalf("recovered replay ended at %d (head %d): %v", want, next, c2.Err())
		}
		if m.Offset != want {
			t.Fatalf("recovered replay offset %d, want %d", m.Offset, want)
		}
		if got := string(m.Payload); got != payload(want) {
			t.Fatalf("offset %d: payload %q, want %q", want, got, payload(want))
		}
	}
	c2.Close()

	// A clean SIGTERM drain must still work on the recovered state.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain after recovery: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recovered broker never finished draining")
	}
}

// TestRetentionFlagsSmoke runs the binary with retention bounds and
// checks the offsets report shows a trimmed tail — the CLI-flag
// analogue of the in-process retention test.
func TestRetentionFlagsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real ffqd process; skipped in -short")
	}
	scratch := t.TempDir()
	dataDir := filepath.Join(scratch, "data")
	bin := buildFFQD(t, scratch)
	proc, addr := startFFQD(t, bin,
		"-data-dir", dataDir, "-segment-bytes", "2048", "-retention-bytes", "8192")

	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Drain live fan-out so the bounded topic queue never pushes back.
	sink, err := c.Subscribe("orders", 8192)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, ok := sink.Recv(); !ok {
				return
			}
		}
	}()
	prod, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	const total = 4000
	for i := 0; i < total; i++ {
		if err := prod.Publish("orders", []byte(strings.Repeat("x", 32))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Drain(); err != nil {
		t.Fatal(err)
	}
	oldest, next, _, err := prod.Offsets("orders", "")
	if err != nil {
		t.Fatal(err)
	}
	if next != total {
		t.Fatalf("next = %d, want %d", next, total)
	}
	if oldest == 0 {
		t.Fatal("-retention-bytes never trimmed the log")
	}
	proc.Process.Signal(syscall.SIGTERM)
	proc.Wait()
}
