package main

import (
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ffq/internal/broker/client"
	"ffq/internal/cluster"
)

// reserveAddrs binds n ephemeral loopback ports and releases them, so
// a cluster's peer list can name every member before any process
// starts. The tiny window in which another process could steal a port
// is acceptable in a test.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestClusterKillOwnerNoAckedLoss is the clustered acceptance check
// from the issue, against real ffqd processes: a 3-node 8-partition
// cluster sustains keyed publishing, delivers per-key FIFO within each
// partition, and after SIGKILL of a partition owner every message that
// was acknowledged AND replicated is still served — by the surviving
// replica — with contiguous offsets and intact payloads.
func TestClusterKillOwnerNoAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs real ffqd processes; skipped in -short")
	}
	const (
		topic      = "orders"
		partitions = 8
		keys       = 64
		perKey     = 20
	)
	scratch := t.TempDir()
	bin := buildFFQD(t, scratch)
	addrs := reserveAddrs(t, 3)

	ids := []string{"n1", "n2", "n3"}
	var peerEnts []string
	peers := make([]cluster.Peer, len(ids))
	for i, id := range ids {
		peerEnts = append(peerEnts, id+"="+addrs[i])
		peers[i] = cluster.Peer{ID: id, Addr: addrs[i]}
	}
	peersFlag := strings.Join(peerEnts, ",")

	procs := make([]*exec.Cmd, len(ids))
	for i, id := range ids {
		dataDir := filepath.Join(scratch, "data-"+id)
		procs[i], _ = startFFQD(t, bin,
			"-listen", addrs[i],
			"-cluster", "-node-id", id, "-peers", peersFlag,
			"-partitions", fmt.Sprint(partitions), "-replication", "2",
			"-poll-interval", "50ms",
			"-data-dir", dataDir)
	}

	// The same static config the nodes run with, for client-side
	// routing: key → partition → owner/replica addresses.
	cfg := &cluster.Config{NodeID: ids[0], Peers: peers, Partitions: partitions, Replication: 2}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	// Keyed publish: each key hashes to a partition, each partition's
	// messages go to its owner. One client per owner keeps each
	// partition's stream totally ordered.
	clients := map[string]*client.Client{}
	dial := func(addr string) *client.Client {
		t.Helper()
		if c := clients[addr]; c != nil {
			return c
		}
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		clients[addr] = c
		return c
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})

	want := make([][]string, partitions) // per-partition payloads, publish order
	for seq := 0; seq < perKey; seq++ {
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("key-%03d", k)
			part := cluster.PartitionForKey([]byte(key), partitions)
			msg := fmt.Sprintf("%s:%d", key, seq)
			c := dial(cfg.Owner(topic, part).Addr)
			if err := c.PublishPart(topic, part, []byte(msg)); err != nil {
				t.Fatalf("publish %s: %v", msg, err)
			}
			want[part] = append(want[part], msg)
		}
	}
	for _, c := range clients {
		if err := c.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}

	// Per-key FIFO within each partition, replayed from the owner: the
	// payload sequence must equal publish order exactly.
	readPartition := func(addr string, part uint32, group string) []string {
		t.Helper()
		c, err := client.Dial(addr, client.Options{})
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		defer c.Close()
		sub, err := c.SubscribeFromPart(topic, part, 256, 0, group, false)
		if err != nil {
			t.Fatalf("subscribe %s@%d: %v", topic, part, err)
		}
		got := make([]string, 0, len(want[part]))
		for len(got) < len(want[part]) {
			m, ok := sub.RecvMsg()
			if !ok {
				t.Fatalf("replay %s@%d at %s ended at %d of %d: %v",
					topic, part, addr, len(got), len(want[part]), c.Err())
			}
			if m.Offset != uint64(len(got)) {
				t.Fatalf("replay %s@%d: offset %d, want %d", topic, part, m.Offset, len(got))
			}
			got = append(got, string(m.Payload))
		}
		return got
	}
	for part := uint32(0); part < partitions; part++ {
		got := readPartition(cfg.Owner(topic, part).Addr, part, "check")
		for i, msg := range got {
			if msg != want[part][i] {
				t.Fatalf("partition %d offset %d = %q, want %q (per-key FIFO broken)", part, i, msg, want[part][i])
			}
		}
	}

	// Wait for every replica to catch up: async replication means the
	// no-loss guarantee covers what was acknowledged and replicated, so
	// the kill comes only after the follower cursors reach the log end.
	deadline := time.Now().Add(60 * time.Second)
	for part := uint32(0); part < partitions; part++ {
		placed := cfg.Assign(topic, part)[:2]
		owner, replica := placed[0], placed[1]
		oc := dial(owner.Addr)
		for {
			_, next, cursor, err := oc.OffsetsPart(topic, part, cluster.ReplicaGroup(replica.ID))
			if err != nil {
				t.Fatalf("offsets %s@%d: %v", topic, part, err)
			}
			if next != uint64(len(want[part])) {
				t.Fatalf("owner %s@%d next = %d, want %d", topic, part, next, len(want[part]))
			}
			if cursor == next {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %s of %s@%d cursor stuck at %d, want %d", replica.ID, topic, part, cursor, next)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// SIGKILL the owner of partition 0 — no drain, no goodbye.
	victim := cfg.Owner(topic, 0).ID
	var vi int
	for i, id := range ids {
		if id == victim {
			vi = i
		}
	}
	if err := procs[vi].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[vi].Wait()
	for _, c := range clients { // connections into the victim are dead now
		c.Close()
	}
	clients = map[string]*client.Client{}

	// Every partition the victim owned must still be fully readable
	// from its surviving replica: same offsets, same payloads.
	for part := uint32(0); part < partitions; part++ {
		placed := cfg.Assign(topic, part)[:2]
		if placed[0].ID != victim {
			continue
		}
		if placed[1].ID == victim {
			t.Fatalf("partition %d placed twice on %s", part, victim)
		}
		got := readPartition(placed[1].Addr, part, "")
		for i, msg := range got {
			if msg != want[part][i] {
				t.Fatalf("after kill: partition %d offset %d = %q, want %q", part, i, msg, want[part][i])
			}
		}
	}

	// The survivors still drain cleanly.
	for i, p := range procs {
		if i == vi {
			continue
		}
		if err := p.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- p.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("node %s drain: %v", ids[i], err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %s never finished draining", ids[i])
		}
	}
}
