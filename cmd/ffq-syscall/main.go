// Command ffq-syscall regenerates the application benchmark of the
// FFQ paper (Figure 7): getppid throughput and latency through the
// simulated secure-enclave syscall proxy, comparing the native path,
// the FFQ-based framework and the shared-MPMC framework. Real SGX is
// replaced by a calibrated cost model (DESIGN.md, substitution #4).
//
// Usage:
//
//	ffq-syscall                 # throughput vs cores (Figure 7 left)
//	ffq-syscall -latency        # per-variant latency (Figure 7 right)
package main

import (
	"flag"
	"fmt"
	"os"

	"ffq/internal/experiments"
	"ffq/internal/report"
)

func main() {
	latency := flag.Bool("latency", false, "measure per-call latency instead of throughput")
	runs := flag.Int("runs", 10, "repetitions per data point")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	maxCores := flag.Int("max-cores", 0, "largest core count to sweep (0 = NumCPU)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Runs = *runs
	o.Scale = *scale
	o.MaxThreads = *maxCores

	var tbl *report.Table
	var err error
	if *latency {
		tbl, err = experiments.Fig7Latency(o)
	} else {
		tbl, err = experiments.Fig7Throughput(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-syscall:", err)
		os.Exit(1)
	}
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-syscall:", err)
		os.Exit(1)
	}
}
