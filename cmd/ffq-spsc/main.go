// Command ffq-spsc benchmarks the single-producer/single-consumer
// queue lineage the FFQ paper discusses in its related work (Section
// II) — Lamport's ring, FastForward, MCRingBuffer, BatchQueue and
// B-Queue — against the FFQ SPSC variant, using a streaming transfer
// workload. This experiment is not a figure of the paper; it
// substantiates the Section II comparisons on the host machine.
//
// Usage:
//
//	ffq-spsc
//	ffq-spsc -items 5000000 -runs 5 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ffq/internal/harness"
	"ffq/internal/report"
	"ffq/internal/spscqueues"
	"ffq/internal/workload"
)

func main() {
	items := flag.Int("items", 2_000_000, "items to stream per run")
	runs := flag.Int("runs", 5, "repetitions per data point")
	minExp := flag.Int("min-size", 6, "smallest capacity as a power-of-two exponent")
	maxExp := flag.Int("max-size", 16, "largest capacity as a power-of-two exponent")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	sizes := harness.PowersOfTwo(*minExp, *maxExp)
	tbl := &report.Table{
		Title: "SPSC lineage (Section II): streaming transfer throughput, Mops/s",
		Note:  fmt.Sprintf("items=%d runs=%d", *items, *runs),
	}
	tbl.Columns = append([]string{"queue"}, func() []string {
		var cols []string
		for _, s := range sizes {
			cols = append(cols, fmt.Sprintf("cap=%d", s))
		}
		return cols
	}()...)

	for _, f := range spscqueues.Factories() {
		row := []any{f.Name}
		for _, size := range sizes {
			f, size := f, size
			sum, err := harness.RepeatErr(*runs, func() (float64, error) {
				res, err := workload.RunStream(workload.StreamConfig{
					Factory:  f,
					Items:    *items,
					Capacity: size,
				})
				if err != nil {
					return 0, err
				}
				return res.MopsPerSec(), nil
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "ffq-spsc:", err)
				os.Exit(1)
			}
			row = append(row, sum.Mean)
		}
		tbl.AddRow(row...)
	}

	var err error
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-spsc:", err)
		os.Exit(1)
	}
}
