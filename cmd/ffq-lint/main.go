// Command ffq-lint runs the module's concurrency-invariant lint suite
// (internal/analysis): five AST- and type-driven checkers, built only
// on the standard library's go/parser, go/ast, go/types and
// go/importer, that enforce the conventions the FFQ algorithms depend
// on — atomic access discipline, cache-line padding, hot-path purity,
// spin-loop backoff, and (rank,gap) word packing.
//
// Usage:
//
//	ffq-lint [flags] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core"); the default is "./...". Exit status is
// 0 when clean, 1 when findings were reported, 2 on load errors, and
// 3 when -selfcheck detects a corpus mismatch.
//
// Flags:
//
//	-list       print the check IDs and their one-line docs, then exit
//	-selfcheck  verify the analyzer against its own testdata corpus:
//	            every injected violation must be reported and nothing
//	            else (this is the self-test CI runs)
//	-werror     treat malformed //ffq: markers as findings even when
//	            the tree is otherwise clean (default true)
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"ffq/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	list := false
	selfcheck := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-list", "--list":
			list = true
		case "-selfcheck", "--selfcheck":
			selfcheck = true
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: ffq-lint [-list] [-selfcheck] [packages]")
			return 0
		default:
			if len(a) > 1 && a[0] == '-' {
				fmt.Fprintf(os.Stderr, "ffq-lint: unknown flag %s\n", a)
				return 2
			}
			patterns = append(patterns, a)
		}
	}

	if list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-18s %s\n", c.ID(), c.Doc())
		}
		fmt.Printf("%-18s %s\n", "marker", "//ffq: marker comments must be well-formed and correctly placed")
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	l, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}

	if selfcheck {
		corpus := filepath.Join(l.ModuleRoot, "internal", "analysis", "testdata", "src")
		n, err := analysis.VerifyCorpus(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffq-lint:", err)
			return 3
		}
		fmt.Printf("ffq-lint: selfcheck ok (%d injected violations all caught)\n", n)
		return 0
	}

	dirs, err := l.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	pkgs, err := l.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	hard := 0
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "ffq-lint: %s: %v\n", p.Path, te)
			hard++
		}
	}
	if hard > 0 {
		fmt.Fprintf(os.Stderr, "ffq-lint: %d type error(s); refusing to certify\n", hard)
		return 2
	}

	findings := analysis.Run(l, pkgs)
	for _, f := range findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !filepath.IsAbs(r) {
			rel = r
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ffq-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
