// Command ffq-lint runs the module's concurrency-invariant lint suite
// (internal/analysis): eight AST- and type-driven checkers, built only
// on the standard library's go/parser, go/ast, go/types and
// go/importer, that enforce the conventions the FFQ algorithms depend
// on — atomic access discipline, module-wide atomic publication
// pairing, cache-line padding, hot-path purity, hot-path allocation
// freedom, spin-loop backoff, goroutine lifecycle joining, and
// (rank,gap) word packing — plus the marker and stale-suppression
// audits.
//
// Usage:
//
//	ffq-lint [flags] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/core"); the default is "./...". Exit status is
// 0 when clean, 1 when findings were reported, 2 on load errors, and
// 3 when -selfcheck detects a corpus mismatch.
//
// Flags:
//
//	-list       print the check IDs and their one-line docs, then exit
//	-selfcheck  verify the analyzer against its own testdata corpus:
//	            every injected violation must be reported and nothing
//	            else (this is the self-test CI runs). With package
//	            patterns, the tree lint follows in the same process,
//	            sharing the loader — one stdlib type-check instead of
//	            two.
//	-json       report findings as a JSON array on stdout
//	-github     report findings as GitHub Actions ::error annotations
//	            (in addition to exit status 1), so CI surfaces them
//	            inline on the offending lines of a pull request
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ffq/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(args []string) int {
	list := false
	selfcheck := false
	asJSON := false
	asGitHub := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-list", "--list":
			list = true
		case "-selfcheck", "--selfcheck":
			selfcheck = true
		case "-json", "--json":
			asJSON = true
		case "-github", "--github":
			asGitHub = true
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: ffq-lint [-list] [-selfcheck] [-json] [-github] [packages]")
			return 0
		default:
			if len(a) > 1 && a[0] == '-' {
				fmt.Fprintf(os.Stderr, "ffq-lint: unknown flag %s\n", a)
				return 2
			}
			patterns = append(patterns, a)
		}
	}
	if asJSON && asGitHub {
		fmt.Fprintln(os.Stderr, "ffq-lint: -json and -github are mutually exclusive")
		return 2
	}

	if list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-18s %s\n", c.ID(), c.Doc())
		}
		fmt.Printf("%-18s %s\n", "marker", "//ffq: marker comments must be well-formed and correctly placed")
		fmt.Printf("%-18s %s\n", "stale-ignore", "line-scoped //ffq: directives must still suppress or sanction a finding")
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	l, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}

	if selfcheck {
		corpus := filepath.Join(l.ModuleRoot, "internal", "analysis", "testdata", "src")
		n, err := analysis.VerifyCorpusWith(l, corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffq-lint:", err)
			return 3
		}
		fmt.Fprintf(os.Stderr, "ffq-lint: selfcheck ok (%d injected violations all caught)\n", n)
		if len(patterns) == 0 {
			return 0
		}
		// Fall through to the tree lint on the same loader: the corpus
		// load already type-checked the stdlib packages the tree needs.
	}

	dirs, err := l.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	pkgs, err := l.LoadDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-lint:", err)
		return 2
	}
	hard := 0
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "ffq-lint: %s: %v\n", p.Path, te)
			hard++
		}
	}
	if hard > 0 {
		fmt.Fprintf(os.Stderr, "ffq-lint: %d type error(s); refusing to certify\n", hard)
		return 2
	}

	findings := analysis.Run(l, pkgs)
	relName := func(f analysis.Finding) string {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !filepath.IsAbs(r) {
			rel = r
		}
		return rel
	}
	switch {
	case asJSON:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: relName(f), Line: f.Pos.Line, Col: f.Pos.Column,
				Check: f.Check, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ffq-lint:", err)
			return 2
		}
	case asGitHub:
		for _, f := range findings {
			// ::error takes the annotation body after the :: separator;
			// properties (file, line, col, title) are comma-separated.
			// Findings are single-line, so no %0A escaping is needed.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=ffq-lint %s::%s\n",
				relName(f), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", relName(f), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ffq-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
