// Command ffq-compare regenerates the comparative study of the FFQ
// paper (Figure 8): the enqueue/dequeue pairs benchmark of Yang &
// Mellor-Crummey's framework, run over every queue in this module's
// registry (FFQ variants, wfqueue, lcrq, ccqueue, msqueue, the
// emulated-HTM ring, the Vyukov MPMC ring, and a Go channel for
// reference) across a thread sweep.
//
// Usage:
//
//	ffq-compare                          # full sweep, 10^7 pairs
//	ffq-compare -scale 0.1 -runs 3
//	ffq-compare -queue ffq-mpmc -queue wfqueue
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ffq/internal/allqueues"
	"ffq/internal/experiments"
	"ffq/internal/report"
)

type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	runs := flag.Int("runs", 10, "repetitions per data point (paper: 10)")
	scale := flag.Float64("scale", 1.0, "pair-count scale factor (1.0 = 10^7 pairs)")
	maxThreads := flag.Int("max-threads", 0, "sweep up to 2x this many threads (0 = NumCPU)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	latency := flag.Int("latency", 0, "measure per-op latency at this thread count instead of the throughput sweep")
	list := flag.Bool("list", false, "list the queue registry and exit")
	var only listFlag
	flag.Var(&only, "queue", "restrict to this queue (repeatable)")
	flag.Parse()

	if *list {
		for _, f := range allqueues.Factories() {
			fmt.Printf("%-10s %s\n", f.Name, f.Brief)
		}
		return
	}
	for _, name := range only {
		if _, err := allqueues.ByName(name); err != nil {
			fmt.Fprintln(os.Stderr, "ffq-compare:", err)
			os.Exit(1)
		}
	}

	o := experiments.DefaultOptions()
	o.Runs = *runs
	o.Scale = *scale
	o.MaxThreads = *maxThreads

	var tbl *report.Table
	var err error
	if *latency > 0 {
		tbl, err = experiments.PairsLatency(o, *latency)
	} else {
		tbl, err = experiments.Fig8(o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-compare:", err)
		os.Exit(1)
	}
	if len(only) > 0 {
		keep := map[string]bool{}
		for _, n := range only {
			keep[n] = true
		}
		var rows [][]string
		for _, r := range tbl.Rows {
			if len(r) > 0 && keep[r[0]] {
				rows = append(rows, r)
			}
		}
		tbl.Rows = rows
	}
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-compare:", err)
		os.Exit(1)
	}
}
