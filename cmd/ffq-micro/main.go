// Command ffq-micro regenerates the microbenchmark figures of the FFQ
// paper on the host machine:
//
//	-fig 2   false-sharing layouts (Figure 2)
//	-fig 3   throughput vs queue size (Figure 3)
//	-fig 6   throughput vs queue size x thread affinity (Figure 6)
//
// Usage:
//
//	ffq-micro -fig 3 -runs 10 -scale 1.0
//	ffq-micro -fig 6 -pairs 2 -csv
//	ffq-micro -json BENCH_spmc.json -variant spmc -consumers 4
//	ffq-micro -json BENCH_useg.json -variant unbounded -batch 64
//	ffq-micro -json BENCH_sharded.json -variant sharded -producers 4 -consumers 1
//	ffq-micro -json - -sharded-compare -producers 4 -consumers 4
//	ffq-micro -json - -broker -transport pipe -consumers 4
//	ffq-micro -json BENCH_shm.json -variant shm -slot-size 64
//	ffq-micro -latency -variant spmc -consumers 1
//	ffq-micro -latency -json BENCH_lat.json -stall-every 100000
//
// With -json the tool instead runs the instrumented queue-size sweep
// and writes benchmark records (throughput plus per-queue spin, yield,
// gap and wait counters) as a JSON array to the given file ("-" for
// stdout). The unbounded variants treat the size axis as segment size
// and additionally report segment recycling counters; -batch moves
// items in contiguous-run batches (the paper-relevant sizes are 1, 8
// and 64). -producers adds the multi-producer axis; with -variant
// sharded all producers share one sharded queue (a wait-free lane
// each) and each record carries the lane count and per-lane depth.
//
// With -sharded-compare (requires -json) the run instead measures the
// sharded-vs-FFQ^m fan-in comparison at -producers x -consumers and
// records both throughputs plus the speedup ratio.
//
// With -variant shm (requires -json) the sweep instead measures the
// shared-memory SPSC transport (internal/shm): this binary re-execs
// itself as a separate producer process that streams fixed-size
// payloads through an mmap segment, and the consumer side reports
// per-element nanoseconds and payloads/s across batch sizes 1, 8, 64.
//
// With -broker (requires -json) the sweep instead measures the ffqd
// broker's end-to-end loopback throughput across client auto-batch
// sizes 1, 8 and 64 — the wire-path answer to the queue batching
// sweep. -transport selects in-process net.Pipe or real loopback TCP.
//
// With -latency the run switches into latency mode: items are stamped
// at submission, and the report carries the sojourn
// (submission-to-dequeue) and per-op enqueue/dequeue latency
// percentiles instead of just Mops/s. Combined with -json the whole
// queue-size sweep gains sojourn_*/enq_*/deq_* percentile metrics;
// without -json a single configuration prints as a percentile table
// plus the stall-watchdog tail. -stall-every N injects an artificial
// consumer stall of -stall-dur every N items — the disturbance the
// tail gates exist to catch.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"ffq/internal/experiments"
	"ffq/internal/obs"
	"ffq/internal/report"
	"ffq/internal/workload"
)

func main() {
	fig := flag.Int("fig", 3, "figure to regenerate: 2, 3 or 6")
	runs := flag.Int("runs", 10, "repetitions per data point (paper: 10)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-sized)")
	minExp := flag.Int("min-size", 6, "smallest queue size as a power-of-two exponent")
	maxExp := flag.Int("max-size", 20, "largest queue size as a power-of-two exponent")
	pairs := flag.Int("pairs", 1, "producer/consumer pairs (figure 6)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.String("json", "", "write the instrumented stats sweep as JSON to this file (\"-\" = stdout)")
	variant := flag.String("variant", "spmc", "queue variant for -json: spsc, spmc, mpmc, sharded, unbounded, unbounded-mpmc, or shm (two-process mmap transport sweep)")
	consumers := flag.Int("consumers", 1, "consumers per producer for -json")
	batch := flag.Int("batch", 1, "items per batch for -json (sharded and unbounded variants use native batch ops)")
	brokerSweep := flag.Bool("broker", false, "with -json: sweep ffqd broker loopback throughput across client batch sizes instead of a queue sweep")
	transport := flag.String("transport", "pipe", "broker transport for -broker: pipe (in-process) or tcp (loopback sockets)")
	producers := flag.Int("producers", 1, "producers: broker connections for -broker, queue producers for -json sweeps (sharded = lanes in one queue)")
	shardedCompare := flag.Bool("sharded-compare", false, "with -json: run the sharded-vs-mpmc fan-in comparison at -producers x -consumers instead of a queue sweep")
	latency := flag.Bool("latency", false, "latency mode: record sojourn and per-op latency percentiles (table, or sojourn_*/enq_*/deq_* metrics with -json)")
	stallEvery := flag.Int("stall-every", 0, "with -latency: inject an artificial consumer stall every N items (0 = none)")
	stallDur := flag.Duration("stall-dur", workload.DefaultStallDuration, "with -latency: injected stall length")
	slotSize := flag.Int("slot-size", 64, "with -variant shm: payload size in bytes")
	shmCap := flag.Int("shm-capacity", 1<<12, "with -variant shm: ring capacity in payloads")
	// Hidden child-process flags: -variant shm re-execs this binary as
	// the producer of the two-process run.
	shmChild := flag.String("shm-child", "", "(internal) produce into this segment path and exit")
	shmItems := flag.Int("shm-items", 0, "(internal) payloads for -shm-child")
	flag.Parse()

	if *shmChild != "" {
		if err := workload.ShmProduce(*shmChild, *slotSize, *shmCap, *shmItems, *batch); err != nil {
			fmt.Fprintln(os.Stderr, "ffq-micro (shm child):", err)
			os.Exit(1)
		}
		return
	}

	o := experiments.DefaultOptions()
	o.Runs = *runs
	o.Scale = *scale
	o.MinSizeExp = *minExp
	o.MaxSizeExp = *maxExp

	if *jsonOut != "" {
		var err error
		switch {
		case *brokerSweep:
			err = runBrokerSweep(o, *jsonOut, *transport, *producers, *consumers)
		case *shardedCompare:
			err = runShardedCompare(o, *jsonOut, *producers, *consumers)
		case *variant == "shm":
			err = runShmSweep(o, *jsonOut, *slotSize, *shmCap)
		default:
			err = runStatsSweep(o, *jsonOut, *variant, *producers, *consumers, *batch, *latency)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffq-micro:", err)
			os.Exit(1)
		}
		return
	}

	if *latency {
		if err := runLatency(o, *variant, *producers, *consumers, *batch, *stallEvery, *stallDur, *csv); err != nil {
			fmt.Fprintln(os.Stderr, "ffq-micro:", err)
			os.Exit(1)
		}
		return
	}

	var tbl *report.Table
	var err error
	switch *fig {
	case 2:
		tbl, err = experiments.Fig2(o)
	case 3:
		tbl, err = experiments.Fig3(o)
	case 6:
		tbl, err = experiments.Fig6(o, *pairs)
	default:
		err = fmt.Errorf("unknown figure %d (have 2, 3, 6)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-micro:", err)
		os.Exit(1)
	}
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-micro:", err)
		os.Exit(1)
	}
}

// runStatsSweep executes the instrumented sweep and writes the JSON
// records.
func runStatsSweep(o experiments.Options, path, variant string, producers, consumers, batch int, latency bool) error {
	v, err := parseVariant(variant)
	if err != nil {
		return err
	}
	recs, err := experiments.StatsSweep(o, v, producers, consumers, batch, latency)
	if err != nil {
		return err
	}
	return writeRecords(path, recs)
}

// parseVariant maps the -variant flag onto the workload enum.
func parseVariant(variant string) (workload.Variant, error) {
	switch variant {
	case "spsc":
		return workload.VariantSPSC, nil
	case "spmc":
		return workload.VariantSPMC, nil
	case "mpmc":
		return workload.VariantMPMC, nil
	case "sharded":
		return workload.VariantSharded, nil
	case "unbounded":
		return workload.VariantUnbounded, nil
	case "unbounded-mpmc":
		return workload.VariantUnboundedMPMC, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (have spsc, spmc, mpmc, sharded, unbounded, unbounded-mpmc)", variant)
	}
}

// runLatency executes one latency-mode run and prints the percentile
// table: the sojourn distribution (submission to dequeue) plus the
// per-op enqueue/dequeue latency, and the stall-watchdog tail when any
// waits crossed the threshold.
func runLatency(o experiments.Options, variant string, producers, consumers, batch, stallEvery int, stallDur time.Duration, csv bool) error {
	v, err := parseVariant(variant)
	if err != nil {
		return err
	}
	items := int(500_000 * o.Scale)
	if items < 2000 {
		items = 2000
	}
	res, err := workload.RunMicro(workload.MicroConfig{
		Variant:              v,
		Producers:            producers,
		ConsumersPerProducer: consumers,
		ItemsPerProducer:     items,
		QueueSize:            1 << 10,
		Batch:                batch,
		MeasureLatency:       true,
		StallThreshold:       obs.DefaultStallThreshold,
		StallEvery:           stallEvery,
		StallDuration:        stallDur,
	})
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title: fmt.Sprintf("ffq-micro latency: %s, %dp x %dc, %d items/producer", v, producers, consumers, items),
		Note: fmt.Sprintf("%.2f Mops/s; quantiles are conservative bucket upper edges (<=%.2f%% relative error)",
			res.MopsPerSec(), 100/float64(int64(1)<<obs.LatSubBits)),
		Columns: []string{"path", "count", "mean", "p50", "p95", "p99", "p999", "max"},
	}
	addLat := func(name string, s *obs.LatencySnapshot) {
		if s == nil || s.Count == 0 {
			return
		}
		tbl.AddRow(name, s.Count, s.Mean().String(),
			time.Duration(s.P50NS).String(), time.Duration(s.P95NS).String(),
			time.Duration(s.P99NS).String(), time.Duration(s.P999NS).String(),
			s.Max().String())
	}
	addLat("sojourn", res.Sojourn)
	if res.Stats != nil {
		addLat("enqueue-op", res.Stats.EnqLatency)
		addLat("dequeue-op", res.Stats.DeqLatency)
	}
	if csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		return err
	}
	if s := res.Stats; s != nil && s.StallEvents > 0 {
		fmt.Printf("\nstalls: %d events past %v (completed: %d, mean %v)\n",
			s.StallEvents, time.Duration(s.StallThresholdNS), s.StallCount, s.MeanStall())
		for _, ev := range s.RecentStalls {
			fmt.Printf("  %s  %-8s rank=%-8d %v\n",
				time.Unix(0, ev.UnixNano).Format("15:04:05.000"), ev.Role, ev.Rank, time.Duration(ev.DurationNS))
		}
	}
	return nil
}

// runShardedCompare executes the sharded-vs-MPMC fan-in comparison and
// writes the JSON records (including the speedup ratio).
func runShardedCompare(o experiments.Options, path string, producers, consumers int) error {
	recs, err := experiments.ShardedVsMPMC(o, producers, consumers)
	if err != nil {
		return err
	}
	return writeRecords(path, recs)
}

// runShmSweep executes the shared-memory transport sweep with the
// producer in a separate process — this binary re-exec'd with the
// hidden -shm-child flags — and writes the JSON records.
func runShmSweep(o experiments.Options, path string, slotSize, capacity int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	spawn := func(batch int) func(segPath string) (func() error, error) {
		return func(segPath string) (func() error, error) {
			n := experiments.ShmSweepItems(o)
			cmd := exec.Command(exe,
				"-shm-child", segPath,
				"-shm-items", strconv.Itoa(n),
				"-slot-size", strconv.Itoa(slotSize),
				"-shm-capacity", strconv.Itoa(capacity),
				"-batch", strconv.Itoa(batch))
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return cmd.Wait, nil
		}
	}
	recs, err := experiments.ShmSweep(o, slotSize, capacity, nil, spawn)
	if err != nil {
		return err
	}
	return writeRecords(path, recs)
}

// runBrokerSweep executes the ffqd loopback broker sweep and writes
// the JSON records.
func runBrokerSweep(o experiments.Options, path, transport string, producers, consumers int) error {
	recs, err := experiments.BrokerSweep(o, transport, producers, consumers, nil)
	if err != nil {
		return err
	}
	return writeRecords(path, recs)
}

// writeRecords writes a JSON record array to path ("-" = stdout).
func writeRecords(path string, recs []report.Record) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.WriteJSON(w, recs)
}
