// Command ffq-verify runs the repository's algorithm-level
// verification suites from the command line:
//
//	ffq-verify -mode model           # exhaustive interleavings of Algorithm 1
//	ffq-verify -mode model -mutate norecheck
//	ffq-verify -mode lin -rounds 200 # linearizability campaigns on every queue
//
// The model mode explores every schedule of a small FFQ^s
// configuration (see internal/modelcheck); the mutate flags re-inject
// the two races the paper documents, which must make verification
// fail. The lin mode records concurrent histories of every queue in
// the registry and checks them against a sequential FIFO
// specification.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"ffq/internal/allqueues"
	"ffq/internal/linearizability"
	"ffq/internal/modelcheck"
)

func main() {
	mode := flag.String("mode", "model", "verification mode: model or lin")
	cells := flag.Int("cells", 2, "model: queue capacity")
	items := flag.Int("items", 4, "model: items enqueued")
	consumers := flag.Int("consumers", 2, "model: concurrent consumers")
	mutate := flag.String("mutate", "", "model: inject a documented race: norecheck or rankfirst")
	liveness := flag.Bool("liveness", true, "model: also check terminal reachability")
	rounds := flag.Int("rounds", 100, "lin: history windows per queue")
	flag.Parse()

	switch *mode {
	case "model":
		runModel(*cells, *items, *consumers, *mutate, *liveness)
	case "lin":
		runLin(*rounds)
	default:
		fmt.Fprintf(os.Stderr, "ffq-verify: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runModel(cells, items, consumers int, mutate string, liveness bool) {
	var mutation modelcheck.Mutation
	switch mutate {
	case "":
		mutation = modelcheck.MutationNone
	case "norecheck":
		mutation = modelcheck.MutationNoRecheck
	case "rankfirst":
		mutation = modelcheck.MutationRankBeforeData
	default:
		fmt.Fprintf(os.Stderr, "ffq-verify: unknown mutation %q\n", mutate)
		os.Exit(2)
	}
	takes := make([]int, consumers)
	for i := range takes {
		takes[i] = items / consumers
	}
	takes[0] += items % consumers
	cfg := modelcheck.Config{
		Cells: cells, Items: items, Consumers: consumers, Takes: takes,
		Mutation: mutation, CheckLiveness: liveness,
	}
	fmt.Printf("exploring Algorithm 1: cells=%d items=%d consumers=%d takes=%v mutation=%q liveness=%v\n",
		cells, items, consumers, takes, mutate, liveness)
	res, err := modelcheck.Explore(cfg)
	fmt.Printf("states=%d terminals=%d max-gaps=%d\n", res.States, res.Terminals, res.MaxGapsSeen)
	if err != nil {
		fmt.Printf("VIOLATION: %v\n", err)
		if mutate != "" {
			fmt.Println("(expected: this mutation re-injects a race the paper documents)")
			return
		}
		os.Exit(1)
	}
	fmt.Println("no violations: exactly-once delivery, per-consumer order" +
		map[bool]string{true: ", liveness", false: ""}[liveness] + " hold over all schedules")
	if mutate != "" {
		fmt.Fprintln(os.Stderr, "ffq-verify: mutation went UNDETECTED — checker weakness")
		os.Exit(1)
	}
}

func runLin(rounds int) {
	for _, f := range allqueues.Factories() {
		producers, consumers := 2, 2
		blocking := f.Name == "ffq-mpmc" || f.Name == "ffq-spmc"
		if f.MaxThreads == 1 {
			producers = 1
			if f.Name == "ffq-spsc" {
				consumers = 1
			}
		}
		checked, skipped := 0, 0
		for r := 0; r < rounds; r++ {
			h := recordWindow(f, producers, consumers, blocking)
			if len(h) > linearizability.MaxOps {
				skipped++
				continue
			}
			ok, err := linearizability.CheckFIFO(h)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ffq-verify: %s: %v\n", f.Name, err)
				os.Exit(1)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "ffq-verify: %s: NON-LINEARIZABLE history:\n%v\n", f.Name, h)
				os.Exit(1)
			}
			checked++
		}
		fmt.Printf("%-10s %d histories linearizable (%d oversized windows skipped)\n",
			f.Name, checked, skipped)
	}
}

// recordWindow runs one small concurrent window against a fresh queue
// instance and returns its history.
func recordWindow(f allqueues.Named, producers, consumers int, blocking bool) []linearizability.Op {
	const opsPerWorker = 3
	shared := f.New(64, producers+consumers)
	var rec linearizability.Recorder
	var sessions []*linearizability.Session
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		s := rec.NewSession()
		sessions = append(sessions, s)
		wg.Add(1)
		go func(p int, s *linearizability.Session) {
			defer wg.Done()
			q := shared.Register()
			for i := 0; i < opsPerWorker; i++ {
				v := uint64(p*opsPerWorker + i + 1)
				st := s.Begin()
				q.Enqueue(v)
				s.EndEnqueue(st, v)
			}
		}(p, s)
	}
	total := int64(producers * opsPerWorker)
	var tickets atomic.Int64
	for c := 0; c < consumers; c++ {
		s := rec.NewSession()
		sessions = append(sessions, s)
		wg.Add(1)
		go func(s *linearizability.Session) {
			defer wg.Done()
			q := shared.Register()
			for tickets.Add(1) <= total {
				st := s.Begin()
				v, ok := q.Dequeue()
				for !ok {
					if !blocking {
						s.EndDequeue(st, 0, false)
					}
					runtime.Gosched()
					st = s.Begin()
					v, ok = q.Dequeue()
				}
				s.EndDequeue(st, v, true)
			}
		}(s)
	}
	wg.Wait()
	return linearizability.Merge(sessions...)
}
