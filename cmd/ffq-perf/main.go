// Command ffq-perf regenerates the cache-locality figures of the FFQ
// paper from the cache-hierarchy simulation (Figures 4 and 5). The
// paper reads these metrics from Intel PCM hardware counters; this
// module substitutes a trace-driven simulator (see DESIGN.md,
// substitution #3), so the output reproduces the paper's shapes, not
// its absolute values.
//
// Usage:
//
//	ffq-perf -fig 4
//	ffq-perf -fig 5 -max-size 22 -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ffq/internal/cachesim"
	"ffq/internal/experiments"
	"ffq/internal/report"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate: 4 or 5")
	server := flag.String("server", "skylake", "simulated hierarchy: skylake, haswell or p8 (the paper's three servers)")
	scale := flag.Float64("scale", 1.0, "simulated item-count scale factor")
	minExp := flag.Int("min-size", 6, "smallest queue size as a power-of-two exponent")
	maxExp := flag.Int("max-size", 20, "largest queue size as a power-of-two exponent")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	cacheCfg, err := cachesim.ServerConfig(*server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-perf:", err)
		os.Exit(1)
	}
	o := experiments.DefaultOptions()
	o.Runs = 1 // the simulation is deterministic
	o.Scale = *scale
	o.MinSizeExp = *minExp
	o.MaxSizeExp = *maxExp
	o.Cache = &cacheCfg

	var tbl *report.Table
	switch *fig {
	case 4:
		tbl, err = experiments.Fig4(o)
	case 5:
		tbl, err = experiments.Fig5(o)
	default:
		err = fmt.Errorf("unknown figure %d (have 4, 5)", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-perf:", err)
		os.Exit(1)
	}
	if *csv {
		err = tbl.CSV(os.Stdout)
	} else {
		err = tbl.Fprint(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffq-perf:", err)
		os.Exit(1)
	}
}
