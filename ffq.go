// Package ffq is a Go implementation of FFQ, the fast
// single-producer/multiple-consumer concurrent FIFO queue of
//
//	S. Arnautov, C. Fetzer, B. Trach, P. Felber:
//	"FFQ: A Fast Single-Producer/Multiple-Consumer Concurrent FIFO
//	Queue", IPDPS 2017,
//
// together with the multi-producer variant (FFQ^m) and the SPSC
// specialization the paper evaluates.
//
// # Choosing a variant
//
//   - SPSC: one producer goroutine, one consumer goroutine. Cheapest:
//     no atomic read-modify-write on either side.
//   - SPMC: one producer, any number of consumers. Enqueue is
//     wait-free while the queue has a free slot; Dequeue is lock-free
//     (one fetch-and-add plus a cell handshake). This is the paper's
//     headline algorithm: use one SPMC queue per producer and fan
//     work out to a consumer pool.
//   - MPMC: any number of producers and consumers. Costs one
//     fetch-and-add plus an (emulated) double-width CAS per
//     operation; still competitive with the fastest general-purpose
//     queues, but if you can give each producer its own SPMC queue,
//     do that instead — it is what the algorithm was designed for.
//   - Unbounded / UnboundedMPMC: the same consumer semantics without
//     the capacity limit — linked lists of FFQ ring segments with
//     segment recycling and batch operations. Enqueue never waits for
//     consumers; memory grows with the backlog instead. See
//     unbounded.go and the README's "Unbounded queues" section.
//
// # Semantics shared by all variants
//
// The SPSC/SPMC/MPMC queues are bounded; capacities must be powers of
// two. Enqueue never fails: when the queue is full it spins (the
// paper's deployments size queues so that an empty slot always exists
// — see the "implicit flow control" observation in Section I).
// Dequeue blocks while the queue is empty, TryDequeue polls without
// blocking, and both return ok=false only after Close, once every
// item has been delivered (for TryDequeue, ok=false also just means
// "nothing ready yet"). Values are delivered exactly once, in FIFO
// order per producer.
//
// # Memory layout
//
// The WithLayout option selects the cell placement strategies the
// paper studies for false sharing (Section IV-A): compact cells,
// one cell per cache line, index randomization, or both. The default
// is compact; LayoutPadded is the best all-round choice on multi-core
// hardware and costs only memory.
package ffq

import (
	"time"

	"ffq/internal/core"
	"ffq/internal/obs"
)

// Layout selects the cell memory placement. See the Layout constants.
type Layout = core.Layout

// Cell memory layouts (Section IV-A of the paper).
const (
	// LayoutCompact packs cells contiguously ("not aligned").
	LayoutCompact = core.LayoutCompact
	// LayoutPadded places every cell on its own cache line ("aligned").
	LayoutPadded = core.LayoutPadded
	// LayoutRandomized rotates index bits so consecutive ranks land 16
	// slots apart ("randomized").
	LayoutRandomized = core.LayoutRandomized
	// LayoutPaddedRandomized combines both ("both").
	LayoutPaddedRandomized = core.LayoutPaddedRandomized
)

// Option configures queue construction.
type Option = core.Option

// WithLayout selects the memory layout of the cell array.
func WithLayout(l Layout) Option { return core.WithLayout(l) }

// Stats is a point-in-time snapshot of a queue's instrumentation
// counters: completed operations, full-/empty-queue spin iterations,
// scheduler yields, gap creation and gap-skip counts, and a
// log2-bucketed histogram of blocking-path wait times. All counters
// are monotonic over the queue's lifetime. See the Stats method on
// each variant.
type Stats = obs.Stats

// WithInstrumentation enables per-queue metrics: every operation,
// spin, yield, gap and blocking wait is counted, readable through the
// queue's Stats method. Instrumentation costs a few atomic additions
// on the paths it observes; without it (the default) a queue keeps no
// per-operation state and the hot paths pay only one predicted branch,
// so leave it off in throughput-critical production queues and enable
// it when sizing, debugging or live-monitoring a deployment.
func WithInstrumentation() Option { return core.WithInstrumentation() }

// WithYieldThreshold overrides the number of consecutive failed polls
// after which a blocked goroutine yields to the Go scheduler instead
// of busy-waiting (default: 64 on multiprocessors, 1 on a
// uniprocessor). n <= 0 restores the default.
func WithYieldThreshold(n int) Option { return core.WithYieldThreshold(n) }

// WithOpLatency enables per-operation latency recording: every
// completed blocking Enqueue/Dequeue records its full latency into
// HDR-style histograms, and the queue's Stats carries p50/p95/p99/p999
// snapshots (EnqLatency/DeqLatency). Costs two clock reads per
// operation — enable it for latency investigations, not throughput
// baselines. Implies instrumentation: a Recorder is attached even
// without WithInstrumentation.
func WithOpLatency() Option { return core.WithOpLatency() }

// WithStallWatchdog arms the stall watchdog: any blocking wait that
// crosses threshold emits a timestamped stall event (role, rank,
// duration) into a fixed-size lock-free event ring and a
// stall-duration histogram, readable through Stats (StallEvents,
// RecentStalls). The in-loop check reads the clock once per 64 spin
// iterations of an already-blocked operation, so an armed watchdog is
// free on the fast path. threshold <= 0 selects the 1ms default.
// Implies instrumentation, like WithOpLatency.
func WithStallWatchdog(threshold time.Duration) Option { return core.WithStallWatchdog(threshold) }

// SPSC is a bounded FIFO queue for exactly one producer goroutine and
// exactly one consumer goroutine.
type SPSC[T any] struct{ q *core.SPSC[T] }

// NewSPSC returns an SPSC queue; capacity must be a power of two >= 2.
func NewSPSC[T any](capacity int, opts ...Option) (*SPSC[T], error) {
	q, err := core.NewSPSC[T](capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &SPSC[T]{q: q}, nil
}

// Enqueue inserts v at the tail, spinning while the queue is full.
// Producer goroutine only.
func (s *SPSC[T]) Enqueue(v T) { s.q.Enqueue(v) }

// TryEnqueue inserts v if the tail slot is free. Producer only.
func (s *SPSC[T]) TryEnqueue(v T) bool { return s.q.TryEnqueue(v) }

// Dequeue removes the head item, blocking while the queue is empty;
// ok=false after Close once drained. Consumer goroutine only.
func (s *SPSC[T]) Dequeue() (v T, ok bool) { return s.q.Dequeue() }

// TryDequeue removes the head item if one is ready. Consumer only.
func (s *SPSC[T]) TryDequeue() (v T, ok bool) { return s.q.TryDequeue() }

// Close marks the queue closed (producer side, after the final
// Enqueue).
func (s *SPSC[T]) Close() { s.q.Close() }

// Len approximates the number of queued items.
func (s *SPSC[T]) Len() int { return s.q.Len() }

// Cap returns the capacity.
func (s *SPSC[T]) Cap() int { return s.q.Cap() }

// Gaps returns the number of ranks the producer has skipped because
// the consumer still held the target cell. Always available; a
// non-zero value means the queue ran full (consider a larger
// capacity).
func (s *SPSC[T]) Gaps() int64 { return s.q.Gaps() }

// Stats snapshots the queue's instrumentation counters. Without
// WithInstrumentation only the always-on GapsCreated counter is
// populated.
func (s *SPSC[T]) Stats() Stats { return s.q.Stats() }

// SPMC is the paper's FFQ^s: a bounded FIFO queue with one producer
// goroutine and any number of concurrent consumers.
type SPMC[T any] struct{ q *core.SPMC[T] }

// NewSPMC returns an SPMC queue; capacity must be a power of two >= 2.
func NewSPMC[T any](capacity int, opts ...Option) (*SPMC[T], error) {
	q, err := core.NewSPMC[T](capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &SPMC[T]{q: q}, nil
}

// Enqueue inserts v at the tail. Wait-free while a slot is free;
// spins when full. Producer goroutine only.
func (s *SPMC[T]) Enqueue(v T) { s.q.Enqueue(v) }

// TryEnqueue inserts v if the tail slot is free. Producer only.
func (s *SPMC[T]) TryEnqueue(v T) bool { return s.q.TryEnqueue(v) }

// Dequeue removes the next item, blocking while the queue is empty;
// ok=false after Close once drained. Safe for any number of
// concurrent consumers.
func (s *SPMC[T]) Dequeue() (v T, ok bool) { return s.q.Dequeue() }

// TryDequeue removes the head item if one is ready, never blocking.
// Where Dequeue reserves a rank with fetch-and-add and must wait for
// it, TryDequeue claims the head with a compare-and-swap only once
// the item is visibly ready, so a false return (empty, still filling,
// or closed and drained) leaves nothing reserved. Safe for concurrent
// consumers, mixed freely with Dequeue.
func (s *SPMC[T]) TryDequeue() (v T, ok bool) { return s.q.TryDequeue() }

// EnqueueBatch inserts every element of vs in order, publishing the
// tail index once per batch instead of once per item. Producer
// goroutine only.
func (s *SPMC[T]) EnqueueBatch(vs []T) { s.q.EnqueueBatch(vs) }

// DequeueBatch removes up to len(dst) items with a single rank
// reservation, blocking like Dequeue. n < len(dst) with ok=true means
// the claimed run crossed producer-skipped ranks; ok=false means
// closed and drained, with the n preceding items still delivered.
// Safe for concurrent consumers.
func (s *SPMC[T]) DequeueBatch(dst []T) (n int, ok bool) { return s.q.DequeueBatch(dst) }

// TryDequeueBatch removes up to len(dst) ready items without blocking,
// claiming a whole resolved run with one compare-and-swap; 0 means
// nothing was ready. Safe for concurrent consumers, mixed freely with
// the other dequeue forms.
func (s *SPMC[T]) TryDequeueBatch(dst []T) int { return s.q.TryDequeueBatch(dst) }

// Close marks the queue closed (producer side, after the final
// Enqueue).
func (s *SPMC[T]) Close() { s.q.Close() }

// Len approximates the number of queued items.
func (s *SPMC[T]) Len() int { return s.q.Len() }

// Cap returns the capacity.
func (s *SPMC[T]) Cap() int { return s.q.Cap() }

// Gaps returns the number of ranks the producer has skipped because a
// slow consumer still held the target cell (Section III-A of the
// paper). Always available; a non-zero value means the queue ran full
// at some point (consider a larger capacity).
func (s *SPMC[T]) Gaps() int64 { return s.q.Gaps() }

// Stats snapshots the queue's instrumentation counters. Without
// WithInstrumentation only the always-on GapsCreated counter is
// populated.
func (s *SPMC[T]) Stats() Stats { return s.q.Stats() }

// MPMC is the paper's FFQ^m: a bounded FIFO queue safe for any number
// of producers and consumers. The paper's 128-bit double
// compare-and-set is emulated with a packed 64-bit word; the queue
// supports (2^32-3) x capacity operations over its lifetime (about
// 500 hours at a billion operations per second on a 4096-slot queue).
type MPMC[T any] struct{ q *core.MPMC[T] }

// NewMPMC returns an MPMC queue; capacity must be a power of two >= 2.
func NewMPMC[T any](capacity int, opts ...Option) (*MPMC[T], error) {
	q, err := core.NewMPMC[T](capacity, opts...)
	if err != nil {
		return nil, err
	}
	return &MPMC[T]{q: q}, nil
}

// Enqueue inserts v at the tail; lock-free while a slot is free,
// spins when full. Safe for concurrent producers.
func (s *MPMC[T]) Enqueue(v T) { s.q.Enqueue(v) }

// Dequeue removes the next item, blocking while the queue is empty;
// ok=false after Close once drained. Safe for concurrent consumers.
func (s *MPMC[T]) Dequeue() (v T, ok bool) { return s.q.Dequeue() }

// TryDequeue removes the head item if one is ready, never blocking;
// see SPMC.TryDequeue. ok=false also covers a producer mid-publish on
// the head rank. Safe for concurrent consumers.
func (s *MPMC[T]) TryDequeue() (v T, ok bool) { return s.q.TryDequeue() }

// EnqueueBatch inserts every element of vs with a single tail
// fetch-and-add for the whole run, preserving per-producer FIFO order
// even when ranks are lost to gaps. Safe for concurrent producers.
func (s *MPMC[T]) EnqueueBatch(vs []T) { s.q.EnqueueBatch(vs) }

// DequeueBatch removes up to len(dst) items with a single rank
// reservation; see SPMC.DequeueBatch for the partial-batch and closed
// semantics. Safe for concurrent consumers.
func (s *MPMC[T]) DequeueBatch(dst []T) (n int, ok bool) { return s.q.DequeueBatch(dst) }

// Close marks the queue closed. Call only after every producer's
// final Enqueue has returned.
func (s *MPMC[T]) Close() { s.q.Close() }

// Len approximates the number of queued items.
func (s *MPMC[T]) Len() int { return s.q.Len() }

// Cap returns the capacity.
func (s *MPMC[T]) Cap() int { return s.q.Cap() }

// Gaps returns the number of successful gap announcements made by
// producers. Always available; a non-zero value means the queue ran
// full at some point (consider a larger capacity).
func (s *MPMC[T]) Gaps() int64 { return s.q.Gaps() }

// Stats snapshots the queue's instrumentation counters. Without
// WithInstrumentation only the always-on GapsCreated counter is
// populated.
func (s *MPMC[T]) Stats() Stats { return s.q.Stats() }
