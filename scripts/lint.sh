#!/bin/sh
# Composite lint gate: formatting, go vet, and the module's own
# concurrency-invariant suite (cmd/ffq-lint). CI runs the same three
# steps; run this before pushing.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== ffq-lint (selfcheck + tree, one shared loader)"
go run ./cmd/ffq-lint -selfcheck ./...

echo "lint: all clean"
