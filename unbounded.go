package ffq

import (
	"ffq/internal/core"
	"ffq/internal/segq"
)

// DefaultSegmentSize is the per-segment ring capacity the unbounded
// queues use unless WithSegmentSize overrides it.
const DefaultSegmentSize = core.DefaultSegmentSize

// WithSegmentSize sets the per-segment ring capacity of the unbounded
// queues; n must be a power of two >= 2 (n <= 0 restores the
// default). Bounded queues ignore it. Larger segments amortize the
// segment hand-off across more operations; smaller segments bound the
// memory a bursty producer strands ahead of slow consumers. See the
// README's "Unbounded queues" section for sizing guidance.
func WithSegmentSize(n int) Option { return core.WithSegmentSize(n) }

// Unbounded is a FIFO queue with FFQ^s semantics and no capacity
// limit: one producer goroutine, any number of consumers. Instead of
// a single ring, it links fixed-size FFQ ring segments into a list;
// the producer never waits for consumers — where the bounded SPMC
// spins on a full ring, Unbounded links a fresh (or recycled) segment
// and keeps going, so Enqueue is unconditionally wait-free. Drained
// segments are recycled through an internal pool, keeping
// steady-state operation allocation-free.
//
// Use the bounded SPMC when the application wants backpressure;
// use Unbounded when producers must never block (event logs,
// telemetry fan-out) and memory may grow with the backlog instead.
type Unbounded[T any] struct{ q *segq.SPMC[T] }

// NewUnbounded returns an unbounded SPMC queue. Accepts the same
// options as the bounded variants plus WithSegmentSize.
func NewUnbounded[T any](opts ...Option) (*Unbounded[T], error) {
	q, err := segq.NewSPMC[T](core.ResolveOptions(opts...))
	if err != nil {
		return nil, err
	}
	return &Unbounded[T]{q: q}, nil
}

// Enqueue inserts v at the tail. Wait-free, never blocks. Producer
// goroutine only.
func (u *Unbounded[T]) Enqueue(v T) { u.q.Enqueue(v) }

// EnqueueBatch inserts vs in order. Consumers can start draining the
// head of the batch immediately; the tail publication and
// instrumentation are amortized across the batch. Producer goroutine
// only.
func (u *Unbounded[T]) EnqueueBatch(vs []T) { u.q.EnqueueBatch(vs) }

// Dequeue removes the next item, blocking while the queue is empty;
// ok=false after Close once drained. Safe for any number of
// concurrent consumers.
func (u *Unbounded[T]) Dequeue() (v T, ok bool) { return u.q.Dequeue() }

// TryDequeue removes the head item if one is ready, never blocking
// and claiming no rank on failure; see SPMC.TryDequeue. Safe for
// concurrent consumers, mixed freely with Dequeue/DequeueBatch.
func (u *Unbounded[T]) TryDequeue() (v T, ok bool) { return u.q.TryDequeue() }

// DequeueBatch fills dst from one contiguous claim of len(dst) ranks
// — a single fetch-and-add regardless of batch size. It blocks until
// the whole batch is delivered; n < len(dst) happens only after
// Close, once the backlog runs out, and implies ok=false. A blocked
// batch delays later-ranked consumers behind it, so size batches to
// the expected flow. Safe for concurrent consumers.
func (u *Unbounded[T]) DequeueBatch(dst []T) (n int, ok bool) { return u.q.DequeueBatch(dst) }

// Close marks the queue closed (producer side, after the final
// Enqueue).
func (u *Unbounded[T]) Close() { u.q.Close() }

// Closed reports whether Close has been called. Closed()==true with
// Len()==0 means drained: no item will ever be delivered again.
func (u *Unbounded[T]) Closed() bool { return u.q.Closed() }

// Len approximates the number of queued items.
func (u *Unbounded[T]) Len() int { return u.q.Len() }

// SegmentSize returns the per-segment ring capacity.
func (u *Unbounded[T]) SegmentSize() int { return u.q.SegmentSize() }

// Segments returns the instantaneous number of live segments; Segments
// x SegmentSize approximates the queue's current memory footprint in
// cells.
func (u *Unbounded[T]) Segments() int { return u.q.Segments() }

// Stats snapshots the queue's instrumentation counters. The segment
// accounting (SegsAllocated, SegsRecycled, SegsRetired, SegsLive) is
// always populated; operation counters need WithInstrumentation.
func (u *Unbounded[T]) Stats() Stats { return u.q.Stats() }

// UnboundedMPMC is the multi-producer unbounded queue. An enqueue
// claims a rank with one fetch-and-add and then uses the same cell
// handshake as Unbounded — notably cheaper than the bounded MPMC's
// emulated double-width CAS, because ranks never wrap and so never
// need gap or round bookkeeping. Retired segments are handed to the
// garbage collector rather than recycled (the recycling pool serves
// only never-shared segments), the price of keeping multi-producer
// segment linking safe; see internal/segq for the full argument.
type UnboundedMPMC[T any] struct{ q *segq.MPMC[T] }

// NewUnboundedMPMC returns an unbounded MPMC queue. Accepts the same
// options as the bounded variants plus WithSegmentSize.
func NewUnboundedMPMC[T any](opts ...Option) (*UnboundedMPMC[T], error) {
	q, err := segq.NewMPMC[T](core.ResolveOptions(opts...))
	if err != nil {
		return nil, err
	}
	return &UnboundedMPMC[T]{q: q}, nil
}

// Enqueue inserts v at the tail. Lock-free, never blocks on
// consumers. Safe for concurrent producers.
func (u *UnboundedMPMC[T]) Enqueue(v T) { u.q.Enqueue(v) }

// EnqueueBatch inserts vs as one contiguous rank run claimed with a
// single fetch-and-add: even under producer contention the batch
// surfaces as an unbroken FIFO run. Safe for concurrent producers.
func (u *UnboundedMPMC[T]) EnqueueBatch(vs []T) { u.q.EnqueueBatch(vs) }

// Dequeue removes the next item, blocking while the queue is empty;
// ok=false after Close once drained. Safe for concurrent consumers.
func (u *UnboundedMPMC[T]) Dequeue() (v T, ok bool) { return u.q.Dequeue() }

// TryDequeue removes the head item if one is ready, never blocking
// and claiming no rank on failure; see SPMC.TryDequeue. Safe for
// concurrent consumers, mixed freely with Dequeue/DequeueBatch.
func (u *UnboundedMPMC[T]) TryDequeue() (v T, ok bool) { return u.q.TryDequeue() }

// DequeueBatch fills dst from one contiguous claim of len(dst) ranks.
// See Unbounded.DequeueBatch for the blocking contract.
func (u *UnboundedMPMC[T]) DequeueBatch(dst []T) (n int, ok bool) { return u.q.DequeueBatch(dst) }

// Close marks the queue closed. Call only after every producer's
// final Enqueue has returned.
func (u *UnboundedMPMC[T]) Close() { u.q.Close() }

// Closed reports whether Close has been called. Closed()==true with
// Len()==0 means drained: no item will ever be delivered again.
func (u *UnboundedMPMC[T]) Closed() bool { return u.q.Closed() }

// Len approximates the number of queued items.
func (u *UnboundedMPMC[T]) Len() int { return u.q.Len() }

// SegmentSize returns the per-segment ring capacity.
func (u *UnboundedMPMC[T]) SegmentSize() int { return u.q.SegmentSize() }

// Segments returns the instantaneous number of live segments.
func (u *UnboundedMPMC[T]) Segments() int { return u.q.Segments() }

// Stats snapshots the queue's instrumentation counters; segment
// accounting is always populated.
func (u *UnboundedMPMC[T]) Stats() Stats { return u.q.Stats() }
