package ffq

import "ffq/internal/core"

// ShardedMPMC composes per-producer FFQ^s lanes into a multi-producer
// queue. Where MPMC serializes all producers through one shared tail
// (a fetch-and-add plus an emulated double-width CAS per item), each
// lane of a sharded queue keeps the paper's headline single-producer
// enqueue path: a producer holding a lane handle publishes with two
// plain stores and no atomic read-modify-write at all. Consumers scan
// the lanes from a rotating start index and claim whole resolved runs
// with one compare-and-swap per non-empty lane.
//
// This is "use one SPMC queue per producer" (the package comment's
// advice) packaged as a single queue: per-producer FIFO order holds,
// items from different producers are mutually unordered, and total
// capacity is lanes x laneCap.
//
// Producers should call AcquireProducer for an exclusive lane handle;
// Enqueue on the queue itself funnels through the shared fallback lane
// (one owner CAS per item, against other fallback producers only) and
// is the path when producers outnumber lanes. Fallback producers keep
// per-producer FIFO too: all of their items travel the same lane.
type ShardedMPMC[T any] struct{ q *core.Sharded[T] }

// NewShardedMPMC returns a queue of `lanes` producer shards holding
// laneCap items each; laneCap must be a power of two >= 2. Size lanes
// to the number of concurrent producers plus one: lane 0 is reserved
// for the shared fallback Enqueue (it would otherwise starve behind an
// indefinitely-held handle), so at most lanes-1 exclusive handles are
// granted.
func NewShardedMPMC[T any](lanes, laneCap int, opts ...Option) (*ShardedMPMC[T], error) {
	q, err := core.NewSharded[T](lanes, laneCap, opts...)
	if err != nil {
		return nil, err
	}
	return &ShardedMPMC[T]{q: q}, nil
}

// ProducerHandle is an exclusive claim on one lane: while held, its
// enqueue methods run the wait-free single-producer path. A handle may
// be used by one goroutine at a time and must be Released when the
// producer retires (using it afterwards panics).
type ProducerHandle[T any] struct{ p *core.Producer[T] }

// AcquireProducer claims a free lane, or ok=false when granting
// another exclusive handle would leave no lane for the shared fallback
// path (at most lanes-1 handles are outstanding at once). Callers that
// get ok=false fall back to Enqueue on the queue, or size the queue
// with more lanes.
func (s *ShardedMPMC[T]) AcquireProducer() (h *ProducerHandle[T], ok bool) {
	p, ok := s.q.Acquire()
	if !ok {
		return nil, false
	}
	return &ProducerHandle[T]{p: p}, true
}

// Lane returns the index of the owned lane (stable for the handle's
// lifetime; useful for per-connection metrics).
func (h *ProducerHandle[T]) Lane() int { return h.p.Lane() }

// Enqueue inserts v on the owned lane. Wait-free while the lane has a
// free slot; spins (skipping ranks) when the lane is full.
func (h *ProducerHandle[T]) Enqueue(v T) { h.p.Enqueue(v) }

// TryEnqueue inserts v if the owned lane's tail slot is free.
func (h *ProducerHandle[T]) TryEnqueue(v T) bool { return h.p.TryEnqueue(v) }

// EnqueueBatch inserts every element of vs in order with one tail
// publication for the whole run.
func (h *ProducerHandle[T]) EnqueueBatch(vs []T) { h.p.EnqueueBatch(vs) }

// Release returns the lane to the pool; the handle is dead afterwards.
func (h *ProducerHandle[T]) Release() { h.p.Release() }

// Enqueue inserts v through the shared fallback lane: the producer
// path when no handle is held. Safe for any number of concurrent
// producers; per-producer FIFO order still holds.
func (s *ShardedMPMC[T]) Enqueue(v T) { s.q.Enqueue(v) }

// Dequeue removes an item from any lane, blocking while all lanes are
// empty; ok=false after Close once drained. Safe for any number of
// concurrent consumers.
func (s *ShardedMPMC[T]) Dequeue() (v T, ok bool) { return s.q.Dequeue() }

// TryDequeue removes an item from the first non-empty lane of one scan
// round, never blocking and never parking a rank claim.
func (s *ShardedMPMC[T]) TryDequeue() (v T, ok bool) { return s.q.TryDequeue() }

// DequeueBatch fills dst from the lanes, blocking until at least one
// item arrives or the queue is closed and drained (then 0, false).
// Each lane's contribution is one contiguous per-producer FIFO run.
func (s *ShardedMPMC[T]) DequeueBatch(dst []T) (n int, ok bool) { return s.q.DequeueBatch(dst) }

// TryDequeueBatch fills dst from one non-blocking scan round over the
// lanes, returning the number of items taken.
func (s *ShardedMPMC[T]) TryDequeueBatch(dst []T) int { return s.q.TryDequeueBatch(dst) }

// Close marks every lane closed. Call only after every producer's
// final enqueue has returned (release handles first).
func (s *ShardedMPMC[T]) Close() { s.q.Close() }

// Closed reports whether Close has been called.
func (s *ShardedMPMC[T]) Closed() bool { return s.q.Closed() }

// Len approximates the number of queued items across all lanes.
func (s *ShardedMPMC[T]) Len() int { return s.q.Len() }

// Cap returns the total capacity (lanes x laneCap).
func (s *ShardedMPMC[T]) Cap() int { return s.q.Cap() }

// Lanes returns the number of producer lanes.
func (s *ShardedMPMC[T]) Lanes() int { return s.q.Lanes() }

// LaneLen approximates the number of queued items in lane i.
func (s *ShardedMPMC[T]) LaneLen(i int) int { return s.q.LaneLen(i) }

// LaneLens appends every lane's depth to dst and returns it.
func (s *ShardedMPMC[T]) LaneLens(dst []int) []int { return s.q.LaneLens(dst) }

// Gaps sums the skipped ranks across all lanes. Always available; a
// non-zero value means some lane ran full (consider a larger laneCap).
func (s *ShardedMPMC[T]) Gaps() int64 { return s.q.Gaps() }

// Stats snapshots the queue's aggregate instrumentation counters (all
// lanes share one recorder). Without WithInstrumentation only the
// always-on GapsCreated counter is populated.
func (s *ShardedMPMC[T]) Stats() Stats { return s.q.Stats() }
